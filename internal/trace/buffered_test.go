package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestBufferedRecorderHoldsUntilFlush pins the contract that makes the
// buffered variant fast: small events stay in the 64 KiB buffer, and
// nothing reaches the underlying writer before Flush.
func TestBufferedRecorderHoldsUntilFlush(t *testing.T) {
	var buf bytes.Buffer
	rec := NewBufferedRecorder(&buf)
	for i := 0; i < 10; i++ {
		if err := rec.Record(Event{Round: i, Node: i, Kind: KindSend, Value: 1}); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("underlying writer saw %d bytes before Flush, want 0", buf.Len())
	}
	if got := rec.Count(); got != 10 {
		t.Errorf("Count = %d before Flush, want 10 (counting is not deferred)", got)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != 10 {
		t.Errorf("read back %d events after Flush, want 10", len(events))
	}
}

// TestBufferedRecorderSpillsWhenFull fills past the buffer size and
// checks events spill to the writer without waiting for Flush.
func TestBufferedRecorderSpillsWhenFull(t *testing.T) {
	var buf bytes.Buffer
	rec := NewBufferedRecorder(&buf)
	big := strings.Repeat("x", 1024)
	for i := 0; i < 2*bufferedRecorderSize/len(big); i++ {
		if err := rec.Record(Event{Round: i, Kind: KindRunHeader, Backend: big}); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if buf.Len() == 0 {
		t.Error("buffer never spilled to the underlying writer")
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("Read after spill + Close: %v (lines interleaved or truncated?)", err)
	}
}

// TestBufferedRecorderCloseDoesNotCloseWriter: Close only flushes —
// the caller owns the handle, so a second Close and later Records must
// still work.
func TestBufferedRecorderCloseDoesNotCloseWriter(t *testing.T) {
	var buf bytes.Buffer
	rec := NewBufferedRecorder(&buf)
	if err := rec.Record(Event{Kind: KindSend, Node: 1}); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := rec.Record(Event{Kind: KindSend, Node: 2}); err != nil {
		t.Fatalf("Record after Close: %v", err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != 2 {
		t.Errorf("read back %d events, want 2", len(events))
	}
}

// TestBufferedRecorderConcurrent hammers Record and Flush from many
// goroutines; the single mutex must keep lines whole.
func TestBufferedRecorderConcurrent(t *testing.T) {
	var buf bytes.Buffer
	rec := NewBufferedRecorder(&buf)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := rec.Record(Event{Round: i, Node: w, Kind: KindReceive}); err != nil {
					t.Errorf("Record: %v", err)
					return
				}
				if i%50 == 0 {
					if err := rec.Flush(); err != nil {
						t.Errorf("Flush: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != writers*perWriter {
		t.Errorf("read back %d events, want %d", len(events), writers*perWriter)
	}
}
