package trace

import (
	"os"
	"strings"
	"testing"
)

// benchTrace builds a synthetic JSONL trace with the event mix of a
// real run: protocol events, probes, and the occasional blank line
// (the case the old strings.TrimSpace(string(line)) conversion paid a
// per-line allocation to detect).
func benchTrace(lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		switch i % 5 {
		case 0:
			b.WriteString(`{"round":`)
			b.WriteString(itoa(i / 5))
			b.WriteString(`,"node":-1,"kind":"spread","value":0.125}`)
		case 4:
			b.WriteString("") // blank line
		default:
			b.WriteString(`{"round":`)
			b.WriteString(itoa(i / 5))
			b.WriteString(`,"node":`)
			b.WriteString(itoa(i % 97))
			b.WriteString(`,"kind":"send","value":3}`)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkCursorDecode measures the per-line cost of streaming a
// trace through Cursor.Next — the replay and monitor ingest hot path.
// Before the bytes.TrimSpace fix every line (blank or not) was copied
// into a throwaway string just to test blankness.
func BenchmarkCursorDecode(b *testing.B) {
	input := benchTrace(4000)
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCursor(strings.NewReader(input))
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}

// benchRecord drives a Sink with the protocol event mix of a live run,
// against /dev/null so the syscall cost per write is real but the disk
// is out of the picture.
func benchRecord(b *testing.B, rec Sink, flush func() error) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Event{Round: i / 16, Node: i % 16, Kind: KindSend, Value: 3,
			Seq: uint64(i + 1), Peer: (i + 1) % 16, Clock: uint64(i + 1), Weight: 1.5}
		if err := rec.Record(e); err != nil {
			b.Fatalf("Record: %v", err)
		}
	}
	if err := flush(); err != nil {
		b.Fatalf("flush: %v", err)
	}
}

// BenchmarkRecorderUnbuffered measures the plain Recorder: one write
// syscall per event — the cost the buffered variant amortizes away.
func BenchmarkRecorderUnbuffered(b *testing.B) {
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		b.Skipf("open %s: %v", os.DevNull, err)
	}
	defer f.Close()
	benchRecord(b, NewRecorder(f), func() error { return nil })
}

// BenchmarkRecorderBuffered measures the BufferedRecorder on the same
// event stream: ~a few hundred events per syscall through the 64 KiB
// buffer.
func BenchmarkRecorderBuffered(b *testing.B) {
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		b.Skipf("open %s: %v", os.DevNull, err)
	}
	defer f.Close()
	rec := NewBufferedRecorder(f)
	benchRecord(b, rec, rec.Close)
}

// BenchmarkCursorSkipBlank isolates the blank-line test: a stream of
// whitespace-only lines exercises nothing but the TrimSpace check.
func BenchmarkCursorSkipBlank(b *testing.B) {
	input := strings.Repeat("   \n", 4096) + `{"round":0,"node":0,"kind":"send","value":0}` + "\n"
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCursor(strings.NewReader(input))
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}
