package trace

import (
	"strings"
	"testing"
)

// benchTrace builds a synthetic JSONL trace with the event mix of a
// real run: protocol events, probes, and the occasional blank line
// (the case the old strings.TrimSpace(string(line)) conversion paid a
// per-line allocation to detect).
func benchTrace(lines int) string {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		switch i % 5 {
		case 0:
			b.WriteString(`{"round":`)
			b.WriteString(itoa(i / 5))
			b.WriteString(`,"node":-1,"kind":"spread","value":0.125}`)
		case 4:
			b.WriteString("") // blank line
		default:
			b.WriteString(`{"round":`)
			b.WriteString(itoa(i / 5))
			b.WriteString(`,"node":`)
			b.WriteString(itoa(i % 97))
			b.WriteString(`,"kind":"send","value":3}`)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkCursorDecode measures the per-line cost of streaming a
// trace through Cursor.Next — the replay and monitor ingest hot path.
// Before the bytes.TrimSpace fix every line (blank or not) was copied
// into a throwaway string just to test blankness.
func BenchmarkCursorDecode(b *testing.B) {
	input := benchTrace(4000)
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCursor(strings.NewReader(input))
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}

// BenchmarkCursorSkipBlank isolates the blank-line test: a stream of
// whitespace-only lines exercises nothing but the TrimSpace check.
func BenchmarkCursorSkipBlank(b *testing.B) {
	input := strings.Repeat("   \n", 4096) + `{"round":0,"node":0,"kind":"send","value":0}` + "\n"
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCursor(strings.NewReader(input))
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
	}
}
