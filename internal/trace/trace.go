// Package trace is the event backbone of the observability layer: it
// records structured protocol events as JSON Lines — one JSON object
// per line — so runs can be archived, diffed and post-processed by
// external tools. The simulation drivers, the live deployment and the
// experiments harness all record through the Sink interface; Recorder
// is the standard JSONL sink and is safe for concurrent writers.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind labels an event. The typed constants below cover the protocol
// and driver events; ad-hoc kinds are allowed for experiment-specific
// probes.
type Kind string

// Typed event kinds.
const (
	// KindSplit: a node split its classification and produced an
	// outgoing half (protocol, Algorithm 1 lines 3-7).
	KindSplit Kind = "split"
	// KindMerge: a node merged a group of collections during absorb
	// (protocol, Algorithm 1 lines 8-11). Value is the group size.
	KindMerge Kind = "merge"
	// KindCrash: the driver killed a node (Figure 4 churn model).
	KindCrash Kind = "crash"
	// KindRecover: the driver brought a node back.
	KindRecover Kind = "recover"
	// KindSend: a driver delivered a send opportunity and a message
	// left the node. In live deployments Value, when non-zero, is the
	// encoded frame size in bytes.
	KindSend Kind = "send"
	// KindReceive: a node received and absorbed a message batch.
	// Value is the batch size — the number of messages in the inbox
	// batch (sim drivers) or of collections in the decoded message
	// (live deployments) — never a byte count.
	KindReceive Kind = "receive"
	// KindDecodeError: an incoming frame failed to decode.
	KindDecodeError Kind = "decode-error"
	// KindSpread: a per-round convergence probe; Value is the sampled
	// maximum pairwise dissimilarity.
	KindSpread Kind = "spread"
	// KindError: a per-round estimation-error probe; Value is the
	// error against ground truth.
	KindError Kind = "error"
	// KindClassification: a node's classification snapshot.
	KindClassification Kind = "classification"
)

// Event is one recorded observation.
type Event struct {
	// Round is the simulation round (or step) of the observation; -1
	// for events not tied to a driver round (live deployments, node-
	// internal protocol events).
	Round int `json:"round"`
	// Node is the observed node's id (-1 for network-wide events).
	Node int `json:"node"`
	// Kind labels the event.
	Kind Kind `json:"kind"`
	// Collections summarizes the node's classification at the time.
	Collections []CollectionRecord `json:"collections,omitempty"`
	// Value carries scalar observations (spread, error, batch size,
	// ...). It is always serialized: a scalar observation of 0 (e.g.
	// spread at convergence) is a legitimate reading, not an absence.
	Value float64 `json:"value"`
}

// CollectionRecord is one collection's snapshot.
type CollectionRecord struct {
	Weight float64   `json:"weight"`
	Mean   []float64 `json:"mean,omitempty"`
	// Summary is the collection's rendered summary, for human reading.
	Summary string `json:"summary"`
}

// Sink consumes events. Implementations must be safe for concurrent
// Record calls: sim drivers are single-goroutine, but livenet nodes
// record from one goroutine per node.
type Sink interface {
	Record(e Event) error
}

// Nop is a Sink that discards every event.
//
//lint:allow globalstate immutable sentinel, assigned only here; the Sink analogue of io.Discard
var Nop Sink = nopSink{}

type nopSink struct{}

func (nopSink) Record(Event) error { return nil }

// Recorder is the standard Sink: it writes events as JSONL. It is safe
// for concurrent writers; an internal mutex serializes encoding, so
// lines never interleave.
type Recorder struct {
	mu    sync.Mutex
	enc   *json.Encoder
	count int
}

var _ Sink = (*Recorder)(nil)

// NewRecorder writes events to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{enc: json.NewEncoder(w)}
}

// Count returns the number of events recorded so far.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Record writes one event.
func (r *Recorder) Record(e Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(e); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	r.count++
	return nil
}

// Scalar records a named scalar observation.
func (r *Recorder) Scalar(round, node int, kind Kind, value float64) error {
	return r.Record(Event{Round: round, Node: node, Kind: kind, Value: value})
}

// Classification records a node's classification snapshot from
// prepared collection records (see e.g. core.TraceRecords).
func (r *Recorder) Classification(round, node int, records []CollectionRecord) error {
	return r.Record(Event{Round: round, Node: node, Kind: KindClassification, Collections: records})
}

// Read decodes all events from r — the inverse of a Recorder run, used
// by tests and post-processing.
func Read(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// CountKind returns how many events carry the given kind — a common
// post-processing reduction.
func CountKind(events []Event, kind Kind) int {
	n := 0
	for _, e := range events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
