// Package trace records structured simulation events as JSON Lines —
// one JSON object per line — so runs can be archived, diffed and
// post-processed by external tools. The recorder is synchronous and
// single-writer: the simulation drivers are single-goroutine, so no
// locking is needed; livenet callers must serialize externally.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"distclass/internal/core"
)

// Event is one recorded observation.
type Event struct {
	// Round is the simulation round (or step) of the observation.
	Round int `json:"round"`
	// Node is the observed node's id (-1 for network-wide events).
	Node int `json:"node"`
	// Kind labels the event ("classification", "spread", "crash", ...).
	Kind string `json:"kind"`
	// Collections summarizes the node's classification at the time.
	Collections []CollectionRecord `json:"collections,omitempty"`
	// Value carries scalar observations (spread, error, ...).
	Value float64 `json:"value,omitempty"`
}

// CollectionRecord is one collection's snapshot.
type CollectionRecord struct {
	Weight float64   `json:"weight"`
	Mean   []float64 `json:"mean,omitempty"`
	// Summary is the collection's rendered summary, for human reading.
	Summary string `json:"summary"`
}

// Recorder writes events as JSONL.
type Recorder struct {
	enc   *json.Encoder
	count int
}

// NewRecorder writes events to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{enc: json.NewEncoder(w)}
}

// Count returns the number of events recorded so far.
func (r *Recorder) Count() int { return r.count }

// Record writes one event.
func (r *Recorder) Record(e Event) error {
	if err := r.enc.Encode(e); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	r.count++
	return nil
}

// Scalar records a named scalar observation.
func (r *Recorder) Scalar(round, node int, kind string, value float64) error {
	return r.Record(Event{Round: round, Node: node, Kind: kind, Value: value})
}

// Classification records a node's classification snapshot. meanOf
// extracts a representative point from a summary; a nil meanOf records
// only weights and rendered summaries.
func (r *Recorder) Classification(round, node int, cls core.Classification, meanOf func(core.Summary) ([]float64, error)) error {
	records := make([]CollectionRecord, len(cls))
	for i, c := range cls {
		rec := CollectionRecord{Weight: c.Weight, Summary: c.Summary.String()}
		if meanOf != nil {
			mean, err := meanOf(c.Summary)
			if err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			rec.Mean = mean
		}
		records[i] = rec
	}
	return r.Record(Event{Round: round, Node: node, Kind: "classification", Collections: records})
}

// Read decodes all events from r — the inverse of a Recorder run, used
// by tests and post-processing.
func Read(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}
