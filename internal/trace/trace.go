// Package trace is the event backbone of the observability layer: it
// records structured protocol events as JSON Lines — one JSON object
// per line — so runs can be archived, diffed and post-processed by
// external tools. The simulation drivers, the live deployment and the
// experiments harness all record through the Sink interface; Recorder
// is the standard JSONL sink and is safe for concurrent writers.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Kind labels an event. The typed constants below cover the protocol
// and driver events; ad-hoc kinds are allowed for experiment-specific
// probes.
type Kind string

// Typed event kinds.
const (
	// KindSplit: a node split its classification and produced an
	// outgoing half (protocol, Algorithm 1 lines 3-7).
	KindSplit Kind = "split"
	// KindMerge: a node merged a group of collections during absorb
	// (protocol, Algorithm 1 lines 8-11). Value is the group size.
	KindMerge Kind = "merge"
	// KindCrash: the driver killed a node (Figure 4 churn model).
	KindCrash Kind = "crash"
	// KindRecover: the driver brought a node back.
	KindRecover Kind = "recover"
	// KindSend: a driver delivered a send opportunity and a message
	// left the node. One event per logical message (one encoded
	// classification), NOT per wire frame: when the live transport
	// coalesces queued messages into a batch frame, every coalesced
	// message still records its own send event. In live deployments
	// Value, when non-zero, is that message's encoded payload size in
	// bytes — codec-dependent, unchanged by batching (framing overhead
	// is visible only in the livenet.bytes_sent counter).
	KindSend Kind = "send"
	// KindReceive: a node received and absorbed a message batch.
	// Value is the batch size — the number of messages in the inbox
	// batch (sim drivers) or of collections in the decoded message
	// (live deployments, one event per logical message even when the
	// message arrived inside a coalesced batch frame) — never a byte
	// count.
	KindReceive Kind = "receive"
	// KindDecodeError: an incoming frame failed to decode.
	KindDecodeError Kind = "decode-error"
	// KindSendDrop: a live sender dropped a send opportunity at a full
	// outbound queue (slow or dead receiver). The drop happens before
	// the node's state changes, so no weight is lost — it measures
	// backpressure, not damage.
	KindSendDrop Kind = "send-drop"
	// KindSpread: a per-round convergence probe; Value is the sampled
	// maximum pairwise dissimilarity.
	KindSpread Kind = "spread"
	// KindError: a per-round estimation-error probe; Value is the
	// error against ground truth.
	KindError Kind = "error"
	// KindClassification: a node's classification snapshot.
	KindClassification Kind = "classification"
	// KindRunHeader: a run-level header, recorded once before any other
	// event. Node is -1 and Round is -1; Backend names the engine
	// backend that produced the run, so analyzers can compare runs
	// across backends.
	KindRunHeader Kind = "run-header"
)

// Event is one recorded observation.
type Event struct {
	// Round is the simulation round (or step) of the observation; -1
	// for events not tied to a driver round (live deployments, node-
	// internal protocol events).
	Round int `json:"round"`
	// Node is the observed node's id (-1 for network-wide events).
	Node int `json:"node"`
	// Kind labels the event.
	Kind Kind `json:"kind"`
	// Collections summarizes the node's classification at the time.
	Collections []CollectionRecord `json:"collections,omitempty"`
	// Value carries scalar observations (spread, error, batch size,
	// ...). It is always serialized: a scalar observation of 0 (e.g.
	// spread at convergence) is a legitimate reading, not an absence.
	Value float64 `json:"value"`
	// Backend names the engine backend on KindRunHeader events
	// ("round", "async", "chan", "pipe", "tcp"); empty elsewhere.
	Backend string `json:"backend,omitempty"`
	// Schema is the trace schema version, set on KindRunHeader events.
	// Absent (0) means SchemaBase: the original event vocabulary.
	// SchemaCausal runs additionally stamp send/receive events with the
	// causal fields below. New fields are always omitempty so old
	// fixtures and goldens keep parsing — and keep their bytes.
	Schema int `json:"schema,omitempty"`
	// Seq is the per-sender sequence number of a causal data transfer
	// (1-based, assigned by the sending node). A send and its receive
	// carry the same (sender, Seq) pair — that pair is the message's
	// identity. Gaps are legal: a sequence number burned on a refused
	// or dropped send is never reused.
	Seq uint64 `json:"seq,omitempty"`
	// Peer is the other endpoint of a causal transfer: the destination
	// node on send events, the source node on receive events.
	Peer int `json:"peer,omitempty"`
	// Clock is a Lamport timestamp: on send events the sender's clock
	// after ticking for the send; on receive events the receiver's
	// clock after the max(local, message)+1 merge rule. A matched
	// receive therefore always carries a strictly larger Clock than its
	// send.
	Clock uint64 `json:"clock,omitempty"`
	// Weight is the total classification weight the transfer carries
	// (causal send/receive events only) — the quantity the provenance
	// ledger conserves.
	Weight float64 `json:"weight,omitempty"`
}

// Trace schema versions, carried on KindRunHeader events.
const (
	// SchemaBase is the original schema: events identified by
	// Round/Node/Kind/Value only. Traces without a run header (or with
	// Schema 0) are SchemaBase.
	SchemaBase = 1
	// SchemaCausal adds per-message correlation: send and receive
	// events carry Seq/Peer/Clock/Weight, with one receive event per
	// delivered message, so the happens-before DAG can be reconstructed
	// from the stream (see internal/causal).
	SchemaCausal = 2
)

// RunHeader builds the run-level header event for the given backend
// name. Record it first so downstream tools can identify the run's
// substrate before any protocol event arrives.
func RunHeader(backend string) Event {
	return Event{Round: -1, Node: -1, Kind: KindRunHeader, Backend: backend}
}

// CausalRunHeader builds the run-level header for a causal
// (SchemaCausal) trace. Causal traces always begin with this header —
// analyzers refuse streams without it rather than silently matching
// nothing.
func CausalRunHeader(backend string) Event {
	e := RunHeader(backend)
	e.Schema = SchemaCausal
	return e
}

// MergeClock applies the Lamport receive rule to the atomic clock c —
// c = max(c, msg)+1 — and returns the updated value. The concurrent
// transports share it; the single-goroutine sim drivers keep plain
// counters.
func MergeClock(c *atomic.Uint64, msg uint64) uint64 {
	for {
		cur := c.Load()
		next := cur + 1
		if msg >= cur {
			next = msg + 1
		}
		if c.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// CollectionRecord is one collection's snapshot.
type CollectionRecord struct {
	Weight float64   `json:"weight"`
	Mean   []float64 `json:"mean,omitempty"`
	// Summary is the collection's rendered summary, for human reading.
	Summary string `json:"summary"`
}

// Sink consumes events. Implementations must be safe for concurrent
// Record calls: sim drivers are single-goroutine, but livenet nodes
// record from one goroutine per node.
type Sink interface {
	Record(e Event) error
}

// Nop is a Sink that discards every event.
//
//lint:allow globalstate immutable sentinel, assigned only here; the Sink analogue of io.Discard
var Nop Sink = nopSink{}

type nopSink struct{}

func (nopSink) Record(Event) error { return nil }

// Recorder is the standard Sink: it writes events as JSONL. It is safe
// for concurrent writers; an internal mutex serializes encoding, so
// lines never interleave.
type Recorder struct {
	mu    sync.Mutex
	enc   *json.Encoder
	count int
}

var _ Sink = (*Recorder)(nil)

// NewRecorder writes events to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{enc: json.NewEncoder(w)}
}

// Count returns the number of events recorded so far.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Record writes one event.
func (r *Recorder) Record(e Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(e); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	r.count++
	return nil
}

// bufferedRecorderSize is the write buffer of a BufferedRecorder.
// 64 KiB batches a few hundred typical event lines per syscall.
const bufferedRecorderSize = 64 << 10

// BufferedRecorder is a Recorder that batches writes through a
// bufio.Writer, so high-rate live runs don't pay a syscall per event.
// Events may sit in the buffer until Flush or Close — callers that
// hand a file to a BufferedRecorder must Close (or Flush) it before
// reading the trace back or letting the process exit. The plain
// Recorder remains unbuffered: every Record lands in the underlying
// writer immediately, which is what tests reading a bytes.Buffer
// mid-run rely on.
type BufferedRecorder struct {
	Recorder
	w *bufio.Writer // flushed under the embedded Recorder's mu
}

// NewBufferedRecorder writes events to w through a 64 KiB buffer.
func NewBufferedRecorder(w io.Writer) *BufferedRecorder {
	b := &BufferedRecorder{w: bufio.NewWriterSize(w, bufferedRecorderSize)}
	b.enc = json.NewEncoder(b.w)
	return b
}

// Flush writes any buffered events to the underlying writer.
func (b *BufferedRecorder) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Close flushes the buffer. It does not close the underlying writer —
// the caller owns the file handle.
func (b *BufferedRecorder) Close() error { return b.Flush() }

// Scalar records a named scalar observation.
func (r *Recorder) Scalar(round, node int, kind Kind, value float64) error {
	return r.Record(Event{Round: round, Node: node, Kind: kind, Value: value})
}

// Classification records a node's classification snapshot from
// prepared collection records (see e.g. core.TraceRecords).
func (r *Recorder) Classification(round, node int, records []CollectionRecord) error {
	return r.Record(Event{Round: round, Node: node, Kind: KindClassification, Collections: records})
}

// Tee returns a Sink that records every event to each of the given
// sinks, in order; nil sinks are skipped. Every sink sees every event
// even when an earlier one fails — the first error is returned. With
// fewer than two non-nil sinks no wrapper is allocated (the single
// sink, or Nop, is returned directly). This is how the live monitor
// attaches beside a JSONL recorder without either knowing about the
// other.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return Nop
	case 1:
		return kept[0]
	default:
		return teeSink(kept)
	}
}

type teeSink []Sink

func (t teeSink) Record(e Event) error {
	var first error
	for _, s := range t {
		if err := s.Record(e); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FilterKinds wraps sink so it only receives events carrying one of
// the given kinds; everything else is dropped silently. With no kinds
// the sink is returned unchanged (an empty filter would be a
// surprising way to spell "discard everything").
func FilterKinds(sink Sink, kinds ...Kind) Sink {
	if len(kinds) == 0 {
		return sink
	}
	f := filterSink{sink: sink, kinds: make(map[Kind]bool, len(kinds))}
	for _, k := range kinds {
		f.kinds[k] = true
	}
	return f
}

type filterSink struct {
	sink  Sink
	kinds map[Kind]bool
}

func (f filterSink) Record(e Event) error {
	if !f.kinds[e.Kind] {
		return nil
	}
	return f.sink.Record(e)
}

// maxLine bounds a single trace line (16 MiB). Classification snapshots
// of large networks are long lines, but anything beyond this is a
// corrupt file, not a trace.
const maxLine = 16 << 20

// Cursor steps through a JSONL trace one event at a time without ever
// holding more than one line in memory — the streaming counterpart of
// Read, sized for multi-gigabyte traces. A Cursor tracks its position,
// so consumers (and errors) can name the exact line of an observation.
type Cursor struct {
	sc   *bufio.Scanner
	line int // 1-based line number of the event last returned by Next
	err  error
}

// NewCursor returns a cursor over the JSONL stream r.
func NewCursor(r io.Reader) *Cursor {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	return &Cursor{sc: sc}
}

// Line returns the 1-based line number of the event most recently
// returned by Next (0 before the first call).
func (c *Cursor) Line() int { return c.line }

// Next decodes the next event. It returns io.EOF at the end of the
// stream; any other error names the offending line. Blank lines are
// skipped (a trailing newline is not an event).
func (c *Cursor) Next() (Event, error) {
	if c.err != nil {
		return Event{}, c.err
	}
	for c.sc.Scan() {
		c.line++
		text := c.sc.Bytes()
		if len(bytes.TrimSpace(text)) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(text, &e); err != nil {
			c.err = fmt.Errorf("trace: line %d: %w", c.line, err)
			return Event{}, c.err
		}
		return e, nil
	}
	if err := c.sc.Err(); err != nil {
		c.err = fmt.Errorf("trace: line %d: %w", c.line+1, err)
		return Event{}, c.err
	}
	c.err = io.EOF
	return Event{}, io.EOF
}

// Stream decodes events from r one line at a time and hands each to fn,
// never holding more than one line in memory. A decode failure reports
// the 1-based line number of the malformed line; a non-nil error from
// fn stops the stream and is returned as-is.
func Stream(r io.Reader, fn func(Event) error) error {
	c := NewCursor(r)
	for {
		e, err := c.Next()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}

// Read decodes all events from r — the inverse of a Recorder run, used
// by tests and post-processing. It is Stream with an accumulator; use
// Stream (or a Cursor) directly when the trace may not fit in memory.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	if err := Stream(r, func(e Event) error {
		out = append(out, e)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// CountKind returns how many events carry the given kind — a common
// post-processing reduction.
func CountKind(events []Event, kind Kind) int {
	n := 0
	for _, e := range events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
