package trace

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCausalRunHeader(t *testing.T) {
	e := CausalRunHeader("tcp")
	if e.Kind != KindRunHeader || e.Round != -1 || e.Node != -1 {
		t.Errorf("header shape = %+v", e)
	}
	if e.Backend != "tcp" || e.Schema != SchemaCausal {
		t.Errorf("backend/schema = %q/%d, want tcp/%d", e.Backend, e.Schema, SchemaCausal)
	}
}

// TestCausalFieldsOmittedWhenUnset pins the byte-compat contract: a
// schema-1 event serializes without any of the causal keys, so
// pre-causal fixtures and goldens keep their bytes.
func TestCausalFieldsOmittedWhenUnset(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	if err := rec.Record(Event{Round: 3, Node: 1, Kind: KindSend, Value: 2}); err != nil {
		t.Fatalf("Record: %v", err)
	}
	for _, key := range []string{"seq", "peer", "clock", "weight", "schema"} {
		if bytes.Contains(buf.Bytes(), []byte(`"`+key+`"`)) {
			t.Errorf("non-causal event serialized %q: %s", key, buf.String())
		}
	}

	buf.Reset()
	if err := rec.Record(Event{Round: -1, Node: 2, Kind: KindReceive, Seq: 7, Peer: 4, Clock: 9, Weight: 1.5}); err != nil {
		t.Fatalf("Record: %v", err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	got := events[0]
	if got.Seq != 7 || got.Peer != 4 || got.Clock != 9 || got.Weight != 1.5 {
		t.Errorf("causal fields did not round-trip: %+v", got)
	}
}

func TestMergeClock(t *testing.T) {
	var c atomic.Uint64
	// Local ahead of the message: tick.
	c.Store(10)
	if got := MergeClock(&c, 4); got != 11 {
		t.Errorf("MergeClock(10, 4) = %d, want 11", got)
	}
	// Message ahead of local: adopt and tick.
	if got := MergeClock(&c, 30); got != 31 {
		t.Errorf("MergeClock(11, 30) = %d, want 31", got)
	}
	// Equal clocks still tick — Lamport clocks never stall.
	if got := MergeClock(&c, 31); got != 32 {
		t.Errorf("MergeClock(31, 31) = %d, want 32", got)
	}
}

// TestMergeClockConcurrent checks the CAS loop under contention: every
// merge must advance the clock, so n concurrent merges of small
// messages advance it by exactly n.
func TestMergeClockConcurrent(t *testing.T) {
	var c atomic.Uint64
	const goroutines, merges = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < merges; i++ {
				MergeClock(&c, 0)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*merges {
		t.Errorf("clock = %d after %d merges, want %d", got, goroutines*merges, goroutines*merges)
	}
}
