package trace

import (
	"io"
	"strings"
	"sync"
	"testing"
)

func TestScalarRoundTrip(t *testing.T) {
	var b strings.Builder
	rec := NewRecorder(&b)
	if err := rec.Scalar(3, 7, KindSpread, 0.25); err != nil {
		t.Fatalf("Scalar: %v", err)
	}
	if err := rec.Scalar(4, -1, "weight", 16); err != nil {
		t.Fatalf("Scalar: %v", err)
	}
	if rec.Count() != 2 {
		t.Errorf("Count = %d", rec.Count())
	}
	events, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Round != 3 || events[0].Node != 7 || events[0].Kind != KindSpread || events[0].Value != 0.25 {
		t.Errorf("event[0] = %+v", events[0])
	}
	if events[1].Value != 16 {
		t.Errorf("event[1] = %+v", events[1])
	}
	if CountKind(events, KindSpread) != 1 || CountKind(events, KindCrash) != 0 {
		t.Errorf("CountKind miscounts")
	}
}

// TestZeroValueSerialized is the regression test for the omitempty bug:
// a scalar observation of exactly 0 (e.g. spread at convergence) must
// appear in the JSON — dropping it made converged rounds look like
// missing data.
func TestZeroValueSerialized(t *testing.T) {
	var b strings.Builder
	rec := NewRecorder(&b)
	if err := rec.Scalar(10, -1, KindSpread, 0); err != nil {
		t.Fatalf("Scalar: %v", err)
	}
	line := b.String()
	if !strings.Contains(line, `"value":0`) {
		t.Fatalf("zero value dropped from JSON: %s", line)
	}
	events, err := Read(strings.NewReader(line))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != 1 || events[0].Value != 0 {
		t.Errorf("round-trip lost the zero observation: %+v", events)
	}
}

func TestClassificationSnapshot(t *testing.T) {
	records := []CollectionRecord{
		{Weight: 0.5, Mean: []float64{1, 2}, Summary: "(1, 2)"},
		{Weight: 0.25, Summary: "(3)"},
	}
	var b strings.Builder
	rec := NewRecorder(&b)
	if err := rec.Classification(9, 2, records); err != nil {
		t.Fatalf("Classification: %v", err)
	}
	events, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e.Kind != KindClassification || len(e.Collections) != 2 {
		t.Fatalf("event = %+v", e)
	}
	c := e.Collections[0]
	if c.Weight != 0.5 || len(c.Mean) != 2 || c.Mean[0] != 1 || c.Mean[1] != 2 {
		t.Errorf("collection = %+v", c)
	}
	if !strings.Contains(c.Summary, "(1, 2)") {
		t.Errorf("summary = %q", c.Summary)
	}
	if e.Collections[1].Mean != nil {
		t.Errorf("mean invented for record without one")
	}
}

// TestConcurrentRecorderRoundTrip writes from many goroutines at once
// (the livenet shape: one recorder shared by every node's goroutines)
// and checks every event arrives intact on its own line. The underlying
// strings.Builder is not itself concurrency-safe, so under -race this
// also proves the recorder's mutex covers the writer.
func TestConcurrentRecorderRoundTrip(t *testing.T) {
	var buf strings.Builder
	rec := NewRecorder(&buf)
	const writers, perWriter = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := rec.Scalar(i, w, KindSend, float64(w)); err != nil {
					t.Errorf("Scalar: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if rec.Count() != writers*perWriter {
		t.Errorf("Count = %d, want %d", rec.Count(), writers*perWriter)
	}
	events, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Read (interleaved lines?): %v", err)
	}
	if len(events) != writers*perWriter {
		t.Fatalf("events = %d, want %d", len(events), writers*perWriter)
	}
	perNode := make(map[int]int)
	for _, e := range events {
		if e.Kind != KindSend || float64(e.Node) != e.Value {
			t.Fatalf("corrupted event: %+v", e)
		}
		perNode[e.Node]++
	}
	for w := 0; w < writers; w++ {
		if perNode[w] != perWriter {
			t.Errorf("writer %d recorded %d events, want %d", w, perNode[w], perWriter)
		}
	}
}

func TestNopSink(t *testing.T) {
	if err := Nop.Record(Event{Kind: KindCrash}); err != nil {
		t.Errorf("Nop.Record: %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Errorf("garbage accepted")
	}
	events, err := Read(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Errorf("empty input: %v, %v", events, err)
	}
}

// TestReadReportsLineNumber is the regression test for the error-
// position fix: a malformed line must be named by its 1-based line
// number, including a truncated trailing line.
func TestReadReportsLineNumber(t *testing.T) {
	good := `{"round":0,"node":1,"kind":"send","value":0}`
	in := good + "\n" + good + "\n" + `{"round":3,"node":` + "\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatalf("truncated trailing line accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error does not name line 3: %v", err)
	}
}

func TestStreamDeliversInOrderAndStops(t *testing.T) {
	var b strings.Builder
	rec := NewRecorder(&b)
	for i := 0; i < 5; i++ {
		if err := rec.Scalar(i, i, KindSpread, float64(i)); err != nil {
			t.Fatalf("Scalar: %v", err)
		}
	}
	var rounds []int
	if err := Stream(strings.NewReader(b.String()), func(e Event) error {
		rounds = append(rounds, e.Round)
		return nil
	}); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if len(rounds) != 5 {
		t.Fatalf("rounds = %v", rounds)
	}
	for i, r := range rounds {
		if r != i {
			t.Errorf("rounds[%d] = %d", i, r)
		}
	}
	// A callback error stops the stream and propagates unchanged.
	sentinel := io.ErrUnexpectedEOF
	n := 0
	err := Stream(strings.NewReader(b.String()), func(Event) error {
		n++
		if n == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || n != 2 {
		t.Errorf("callback error: n=%d err=%v", n, err)
	}
}

func TestCursorSkipsBlankLinesAndTracksPosition(t *testing.T) {
	in := "\n" + `{"round":7,"node":0,"kind":"send","value":0}` + "\n\n" +
		`{"round":8,"node":1,"kind":"receive","value":2}` + "\n"
	c := NewCursor(strings.NewReader(in))
	e, err := c.Next()
	if err != nil || e.Round != 7 {
		t.Fatalf("first event: %+v, %v", e, err)
	}
	if c.Line() != 2 {
		t.Errorf("Line = %d, want 2", c.Line())
	}
	e, err = c.Next()
	if err != nil || e.Round != 8 || c.Line() != 4 {
		t.Fatalf("second event: %+v at line %d, %v", e, c.Line(), err)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Errorf("end: %v", err)
	}
	// The cursor is sticky after EOF.
	if _, err := c.Next(); err != io.EOF {
		t.Errorf("repeat end: %v", err)
	}
}
