package trace

import (
	"strings"
	"testing"

	"distclass/internal/centroids"
	"distclass/internal/core"
	"distclass/internal/vec"
)

func TestScalarRoundTrip(t *testing.T) {
	var b strings.Builder
	rec := NewRecorder(&b)
	if err := rec.Scalar(3, 7, "spread", 0.25); err != nil {
		t.Fatalf("Scalar: %v", err)
	}
	if err := rec.Scalar(4, -1, "weight", 16); err != nil {
		t.Fatalf("Scalar: %v", err)
	}
	if rec.Count() != 2 {
		t.Errorf("Count = %d", rec.Count())
	}
	events, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Round != 3 || events[0].Node != 7 || events[0].Kind != "spread" || events[0].Value != 0.25 {
		t.Errorf("event[0] = %+v", events[0])
	}
	if events[1].Value != 16 {
		t.Errorf("event[1] = %+v", events[1])
	}
}

func TestClassificationSnapshot(t *testing.T) {
	s, err := centroids.Method{}.Summarize(vec.Of(1, 2))
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	cls := core.Classification{{Summary: s, Weight: 0.5}}
	var b strings.Builder
	rec := NewRecorder(&b)
	meanOf := func(sum core.Summary) ([]float64, error) {
		return sum.(centroids.Centroid).Point, nil
	}
	if err := rec.Classification(9, 2, cls, meanOf); err != nil {
		t.Fatalf("Classification: %v", err)
	}
	events, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e.Kind != "classification" || len(e.Collections) != 1 {
		t.Fatalf("event = %+v", e)
	}
	c := e.Collections[0]
	if c.Weight != 0.5 || len(c.Mean) != 2 || c.Mean[0] != 1 || c.Mean[1] != 2 {
		t.Errorf("collection = %+v", c)
	}
	if !strings.Contains(c.Summary, "(1, 2)") {
		t.Errorf("summary = %q", c.Summary)
	}
	// Without meanOf, means are omitted.
	var b2 strings.Builder
	rec2 := NewRecorder(&b2)
	if err := rec2.Classification(0, 0, cls, nil); err != nil {
		t.Fatalf("Classification: %v", err)
	}
	events2, err := Read(strings.NewReader(b2.String()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if events2[0].Collections[0].Mean != nil {
		t.Errorf("mean recorded without meanOf")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Errorf("garbage accepted")
	}
	events, err := Read(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Errorf("empty input: %v, %v", events, err)
	}
}
