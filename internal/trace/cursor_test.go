package trace

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// TestCursorOversizedLine feeds a line beyond the maxLine bound: the
// cursor must fail with an error naming the offending line, not hang
// or silently truncate.
func TestCursorOversizedLine(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"round":0,"node":0,"kind":"send","value":0}` + "\n")
	b.WriteString(`{"round":1,"node":0,"kind":"send","value":"`)
	b.WriteString(strings.Repeat("x", maxLine+1))
	b.WriteString(`"}` + "\n")
	c := NewCursor(strings.NewReader(b.String()))
	if _, err := c.Next(); err != nil {
		t.Fatalf("first line: %v", err)
	}
	_, err := c.Next()
	if err == nil {
		t.Fatalf("oversized line decoded without error")
	}
	if errors.Is(err, io.EOF) {
		t.Fatalf("oversized line reported as EOF")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name line 2", err)
	}
	if !strings.Contains(err.Error(), "token too long") {
		t.Errorf("error %q does not surface the scanner cause", err)
	}
}

// TestCursorCorruptLineNumber interleaves a corrupt JSON line into a
// valid stream: the error must carry the 1-based number of the bad
// line, counting blank lines the cursor skipped.
func TestCursorCorruptLineNumber(t *testing.T) {
	input := `{"round":0,"node":0,"kind":"send","value":0}` + "\n" +
		"\n" + // blank line, skipped but counted
		`{"round":1,"node":1,"kind":"send","value":0}` + "\n" +
		`{"round":2,"node":2,` + "\n" + // corrupt: truncated object
		`{"round":3,"node":3,"kind":"send","value":0}` + "\n"
	c := NewCursor(strings.NewReader(input))
	for i := 0; i < 2; i++ {
		if _, err := c.Next(); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	_, err := c.Next()
	if err == nil {
		t.Fatalf("corrupt line decoded without error")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %q does not name line 4", err)
	}
	if c.Line() != 4 {
		t.Errorf("Line() = %d after the failure, want 4", c.Line())
	}
}

// TestCursorErrorSticks checks that a cursor never recovers from its
// first failure: every later Next returns the same error rather than
// resuming past corrupt data.
func TestCursorErrorSticks(t *testing.T) {
	input := `not json` + "\n" +
		`{"round":0,"node":0,"kind":"send","value":0}` + "\n"
	c := NewCursor(strings.NewReader(input))
	_, first := c.Next()
	if first == nil {
		t.Fatalf("corrupt first line decoded without error")
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Next(); err != first {
			t.Fatalf("Next after failure returned %v, want the sticky %v", err, first)
		}
	}
	// EOF sticks the same way on clean streams.
	c = NewCursor(strings.NewReader(""))
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("second Next on empty stream: %v, want io.EOF", err)
	}
}

// errSink fails every Record with a fixed error.
type errSink struct{ err error }

func (s errSink) Record(Event) error { return s.err }

// collectSink appends every event it receives.
type collectSink struct{ events []Event }

func (s *collectSink) Record(e Event) error {
	s.events = append(s.events, e)
	return nil
}

func TestTeeFansOutAndCollapses(t *testing.T) {
	a, b := &collectSink{}, &collectSink{}
	tee := Tee(nil, a, nil, b)
	for i := 0; i < 3; i++ {
		if err := tee.Record(Event{Round: i, Node: i, Kind: KindSend}); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if len(a.events) != 3 || len(b.events) != 3 {
		t.Errorf("fan-out recorded %d/%d events, want 3/3", len(a.events), len(b.events))
	}
	if got := Tee(nil, a, nil); got != Sink(a) {
		t.Errorf("single-sink tee did not collapse to the sink itself")
	}
	if got := Tee(nil, nil); got != Nop {
		t.Errorf("empty tee = %v, want Nop", got)
	}
}

func TestTeeFirstErrorWinsButAllRecord(t *testing.T) {
	boom := fmt.Errorf("boom")
	late := &collectSink{}
	tee := Tee(errSink{boom}, late)
	if err := tee.Record(Event{Kind: KindSend}); err != boom {
		t.Fatalf("Record error = %v, want boom", err)
	}
	if len(late.events) != 1 {
		t.Errorf("sink after the failing one recorded %d events, want 1", len(late.events))
	}
}

func TestFilterKinds(t *testing.T) {
	dst := &collectSink{}
	f := FilterKinds(dst, KindSpread, KindError)
	for _, k := range []Kind{KindSend, KindSpread, KindMerge, KindError, KindSpread} {
		if err := f.Record(Event{Kind: k}); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if len(dst.events) != 3 {
		t.Fatalf("filter passed %d events, want 3", len(dst.events))
	}
	for _, e := range dst.events {
		if e.Kind != KindSpread && e.Kind != KindError {
			t.Errorf("filter passed kind %q", e.Kind)
		}
	}
	if got := FilterKinds(dst); got != Sink(dst) {
		t.Errorf("empty filter did not return the sink unchanged")
	}
}
