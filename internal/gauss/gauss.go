// Package gauss implements weighted multivariate Gaussians and Gaussian
// Mixtures — the summary domain of the paper's GM instantiation (§5).
//
// A collection of weighted values is summarized by the tuple (mu, sigma)
// of its weighted mean and covariance; together with the collection
// weight this is a weighted Gaussian. A classification is a weighted set
// of Gaussians — a Gaussian Mixture.
//
// Covariances may be singular: a freshly summarized input value has a
// zero covariance matrix (§5.1: "valToSummary(val) returns a collection
// with an average equal to val, a zero covariance matrix, and a weight
// of 1"). Density evaluation therefore conditions the covariance with a
// variance floor (sigma + floor*I) before factoring.
package gauss

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"distclass/internal/mat"
	"distclass/internal/rng"
	"distclass/internal/vec"
)

// DefaultVarianceFloor is the ridge added to covariance diagonals before
// density evaluation, keeping singleton (zero-covariance) summaries
// usable. It is large enough to dominate float64 rounding in the
// experiments' coordinate ranges and small enough not to distort any
// non-degenerate covariance.
const DefaultVarianceFloor = 1e-6

const log2Pi = 1.8378770664093453 // log(2*pi)

// ErrEmpty reports an operation over an empty set of components.
var ErrEmpty = errors.New("gauss: empty component set")

// Gaussian is a multivariate normal distribution N(Mean, Cov). Cov is
// symmetric positive semi-definite; it may be singular (see package
// comment).
type Gaussian struct {
	Mean vec.Vector
	Cov  *mat.Matrix
}

// NewPoint returns the Gaussian summarizing a single value: mean = val,
// zero covariance.
func NewPoint(val vec.Vector) Gaussian {
	return Gaussian{Mean: val.Clone(), Cov: mat.New(val.Dim())}
}

// New validates and returns a Gaussian with the given moments.
func New(mean vec.Vector, cov *mat.Matrix) (Gaussian, error) {
	if mean.Dim() != cov.Dim() {
		return Gaussian{}, fmt.Errorf("gauss: mean dim %d vs cov dim %d", mean.Dim(), cov.Dim())
	}
	if !mean.IsFinite() || !cov.IsFinite() {
		return Gaussian{}, errors.New("gauss: non-finite moments")
	}
	if !cov.IsSymmetric(1e-8) {
		return Gaussian{}, errors.New("gauss: covariance is not symmetric")
	}
	return Gaussian{Mean: mean.Clone(), Cov: cov.Symmetrize()}, nil
}

// Dim returns the dimension of the distribution.
func (g Gaussian) Dim() int { return g.Mean.Dim() }

// Clone returns an independent copy.
func (g Gaussian) Clone() Gaussian {
	return Gaussian{Mean: g.Mean.Clone(), Cov: g.Cov.Clone()}
}

// String renders the Gaussian compactly.
func (g Gaussian) String() string {
	return fmt.Sprintf("N(mean=%v, cov=%v)", g.Mean, g.Cov)
}

// Conditioned is a Gaussian prepared for repeated density evaluation:
// its (floored) covariance is factored once.
type Conditioned struct {
	g      Gaussian
	chol   *mat.Cholesky
	logDet float64
	inv    *mat.Matrix // lazily computed by Inverse
}

// Condition factors g's covariance after adding floor*I. A non-positive
// floor is replaced by DefaultVarianceFloor when the raw covariance is
// not positive definite.
func (g Gaussian) Condition(floor float64) (*Conditioned, error) {
	cov := g.Cov
	if floor > 0 {
		cov = g.Cov.Clone()
		for i := 0; i < cov.Dim(); i++ {
			cov.Set(i, i, cov.At(i, i)+floor)
		}
	}
	chol, err := mat.NewCholesky(cov)
	if err != nil {
		if floor <= 0 {
			return g.Condition(DefaultVarianceFloor)
		}
		// Escalate the floor: extremely ill-conditioned covariances can
		// defeat a tiny ridge.
		if floor < 1 {
			return g.Condition(floor * 1e3)
		}
		return nil, fmt.Errorf("gauss: conditioning failed: %w", err)
	}
	return &Conditioned{g: g, chol: chol, logDet: chol.LogDet()}, nil
}

// Gaussian returns the underlying distribution (with the original,
// unfloored covariance).
func (c *Conditioned) Gaussian() Gaussian { return c.g }

// LogDet returns log det of the conditioned covariance.
func (c *Conditioned) LogDet() float64 { return c.logDet }

// LogDensity returns log N(x; mu, sigma_floored).
func (c *Conditioned) LogDensity(x vec.Vector) (float64, error) {
	diff, err := vec.Sub(x, c.g.Mean)
	if err != nil {
		return 0, err
	}
	q, err := c.chol.QuadForm(diff)
	if err != nil {
		return 0, err
	}
	d := float64(c.g.Dim())
	return -0.5 * (d*log2Pi + c.logDet + q), nil
}

// Density returns N(x; mu, sigma_floored).
func (c *Conditioned) Density(x vec.Vector) (float64, error) {
	lp, err := c.LogDensity(x)
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// Mahalanobis returns the Mahalanobis distance of x from the mean.
func (c *Conditioned) Mahalanobis(x vec.Vector) (float64, error) {
	diff, err := vec.Sub(x, c.g.Mean)
	if err != nil {
		return 0, err
	}
	q, err := c.chol.QuadForm(diff)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(q), nil
}

// Inverse returns the inverse of the conditioned covariance, computing
// and caching it on first use.
func (c *Conditioned) Inverse() (*mat.Matrix, error) {
	if c.inv == nil {
		inv, err := c.chol.Inverse()
		if err != nil {
			return nil, err
		}
		c.inv = inv
	}
	return c.inv, nil
}

// ExpectedLogDensity returns E_{x ~ src}[log N(x; c)], the expected
// log-density of the conditioned Gaussian over another Gaussian:
//
//	log N(src.Mean; c) - tr(c.Cov^{-1} src.Cov)/2.
//
// This is the E-step affinity used by the EM mixture-reduction
// partition function (§5.2): it scores how well component c explains
// the whole sub-population summarized by src, not just its mean.
func (c *Conditioned) ExpectedLogDensity(src Gaussian) (float64, error) {
	base, err := c.LogDensity(src.Mean)
	if err != nil {
		return 0, err
	}
	inv, err := c.Inverse()
	if err != nil {
		return 0, err
	}
	prod, err := mat.Mul(inv, src.Cov)
	if err != nil {
		return 0, err
	}
	return base - prod.Trace()/2, nil
}

// KL returns the Kullback-Leibler divergence KL(src || c) where both
// covariances are conditioned with the same floor as c. src must be
// conditionable.
func (c *Conditioned) KL(src *Conditioned) (float64, error) {
	inv, err := c.Inverse()
	if err != nil {
		return 0, err
	}
	// tr(Sigma_c^{-1} Sigma_src): use src's *conditioned* covariance via
	// its factor L: tr(inv * L L^T).
	l := src.chol.L()
	llt, err := mat.Mul(l, l.Transpose())
	if err != nil {
		return 0, err
	}
	prod, err := mat.Mul(inv, llt)
	if err != nil {
		return 0, err
	}
	diff, err := vec.Sub(c.g.Mean, src.g.Mean)
	if err != nil {
		return 0, err
	}
	q, err := c.chol.QuadForm(diff)
	if err != nil {
		return 0, err
	}
	d := float64(c.g.Dim())
	return 0.5 * (prod.Trace() + q - d + c.logDet - src.logDet), nil
}

// Component is a weighted Gaussian: one collection of the GM algorithm.
type Component struct {
	Gaussian
	Weight float64
}

// Clone returns an independent copy.
func (c Component) Clone() Component {
	return Component{Gaussian: c.Gaussian.Clone(), Weight: c.Weight}
}

// String renders the component compactly.
func (c Component) String() string {
	return fmt.Sprintf("{w=%.4g %v}", c.Weight, c.Gaussian)
}

// Merge returns the moment-preserving merge of the components: the
// Gaussian with the mean and covariance of the union of the underlying
// collections, and the summed weight. This implements the paper's
// mergeSet for the GM instantiation and satisfies requirement R4:
// merging summaries equals summarizing the merged collection.
func Merge(cs []Component) (Component, error) {
	if len(cs) == 0 {
		return Component{}, ErrEmpty
	}
	d := cs[0].Dim()
	var total float64
	mean := vec.New(d)
	for i, c := range cs {
		if c.Dim() != d {
			return Component{}, fmt.Errorf("gauss: component %d has dim %d, want %d", i, c.Dim(), d)
		}
		if c.Weight <= 0 {
			return Component{}, fmt.Errorf("gauss: component %d has non-positive weight %v", i, c.Weight)
		}
		total += c.Weight
		vec.Axpy(mean, c.Weight, c.Mean)
	}
	vec.ScaleInPlace(1/total, mean)
	cov := mat.New(d)
	for _, c := range cs {
		// Law of total covariance: within-component plus between-component.
		mat.AddInPlace(cov, c.Weight/total, c.Cov)
		diff, err := vec.Sub(c.Mean, mean)
		if err != nil {
			return Component{}, err
		}
		mat.AddOuterInPlace(cov, c.Weight/total, diff)
	}
	return Component{Gaussian: Gaussian{Mean: mean, Cov: cov.Symmetrize()}, Weight: total}, nil
}

// Mixture is a weighted set of Gaussians — a classification in the GM
// instantiation.
type Mixture []Component

// TotalWeight returns the sum of component weights.
func (m Mixture) TotalWeight() float64 {
	var s float64
	for _, c := range m {
		s += c.Weight
	}
	return s
}

// Dim returns the dimension of the mixture (0 for an empty mixture).
func (m Mixture) Dim() int {
	if len(m) == 0 {
		return 0
	}
	return m[0].Dim()
}

// Clone returns a deep copy.
func (m Mixture) Clone() Mixture {
	out := make(Mixture, len(m))
	for i, c := range m {
		out[i] = c.Clone()
	}
	return out
}

// Mean returns the overall mean of the mixture (weight-averaged
// component means).
func (m Mixture) Mean() (vec.Vector, error) {
	if len(m) == 0 {
		return nil, ErrEmpty
	}
	merged, err := Merge(m)
	if err != nil {
		return nil, err
	}
	return merged.Mean, nil
}

// LogDensity returns log sum_j (w_j / W) N(x; component j), with each
// component conditioned by floor. It uses the log-sum-exp trick for
// numerical stability.
func (m Mixture) LogDensity(x vec.Vector, floor float64) (float64, error) {
	if len(m) == 0 {
		return 0, ErrEmpty
	}
	total := m.TotalWeight()
	logs := make([]float64, len(m))
	for i, c := range m {
		cond, err := c.Condition(floor)
		if err != nil {
			return 0, err
		}
		lp, err := cond.LogDensity(x)
		if err != nil {
			return 0, err
		}
		logs[i] = math.Log(c.Weight/total) + lp
	}
	return LogSumExp(logs), nil
}

// Sample draws n values from the mixture (component by relative weight,
// then the component's Gaussian, conditioned by floor so that
// zero-covariance components yield near-point samples).
func (m Mixture) Sample(r *rng.RNG, n int, floor float64) ([]vec.Vector, error) {
	if len(m) == 0 {
		return nil, ErrEmpty
	}
	weights := make([]float64, len(m))
	samplers := make([]*rng.MVN, len(m))
	for i, c := range m {
		weights[i] = c.Weight
		cov := c.Cov.Clone()
		f := floor
		if f <= 0 {
			f = DefaultVarianceFloor
		}
		for j := 0; j < cov.Dim(); j++ {
			cov.Set(j, j, cov.At(j, j)+f)
		}
		mvn, err := rng.NewMVN(c.Mean, cov)
		if err != nil {
			return nil, fmt.Errorf("gauss: component %d: %w", i, err)
		}
		samplers[i] = mvn
	}
	out := make([]vec.Vector, n)
	for i := range out {
		idx, err := r.Categorical(weights)
		if err != nil {
			return nil, err
		}
		out[i] = samplers[idx].Sample(r)
	}
	return out, nil
}

// String renders the mixture one component per line.
func (m Mixture) String() string {
	var b strings.Builder
	for i, c := range m {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// LogSumExp returns log(sum exp(x_i)) computed stably.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}
