package gauss

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"distclass/internal/mat"
	"distclass/internal/rng"
	"distclass/internal/stats"
	"distclass/internal/vec"
)

func TestNewPoint(t *testing.T) {
	v := vec.Of(1, 2)
	g := NewPoint(v)
	if !g.Mean.Equal(v) {
		t.Errorf("mean = %v", g.Mean)
	}
	if !g.Cov.Equal(mat.New(2)) {
		t.Errorf("cov = %v, want zero", g.Cov)
	}
	v[0] = 99
	if g.Mean[0] != 1 {
		t.Errorf("NewPoint aliases input value")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(vec.Of(1), mat.Identity(2)); err == nil {
		t.Errorf("dim mismatch should error")
	}
	if _, err := New(vec.Of(math.NaN(), 0), mat.Identity(2)); err == nil {
		t.Errorf("NaN mean should error")
	}
	asym, _ := mat.FromRows([][]float64{{1, 5}, {0, 1}})
	if _, err := New(vec.Of(0, 0), asym); err == nil {
		t.Errorf("asymmetric covariance should error")
	}
	g, err := New(vec.Of(0, 0), mat.Identity(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if g.Dim() != 2 {
		t.Errorf("Dim = %d", g.Dim())
	}
}

func TestCloneIndependence(t *testing.T) {
	g, _ := New(vec.Of(1, 2), mat.Identity(2))
	c := g.Clone()
	c.Mean[0] = 99
	c.Cov.Set(0, 0, 99)
	if g.Mean[0] != 1 || g.Cov.At(0, 0) != 1 {
		t.Errorf("Clone aliases original")
	}
}

func TestLogDensityStandardNormal(t *testing.T) {
	g, _ := New(vec.Of(0, 0), mat.Identity(2))
	cond, err := g.Condition(0)
	if err != nil {
		t.Fatalf("Condition: %v", err)
	}
	// Standard bivariate normal at origin: 1/(2*pi).
	got, err := cond.Density(vec.Of(0, 0))
	if err != nil {
		t.Fatalf("Density: %v", err)
	}
	want := 1 / (2 * math.Pi)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Density(0) = %v, want %v", got, want)
	}
	lp, _ := cond.LogDensity(vec.Of(3, 4))
	wantLp := -math.Log(2*math.Pi) - 12.5
	if math.Abs(lp-wantLp) > 1e-9 {
		t.Errorf("LogDensity(3,4) = %v, want %v", lp, wantLp)
	}
}

func TestLogDensity1D(t *testing.T) {
	g, _ := New(vec.Of(1), mat.Diagonal(4))
	cond, err := g.Condition(0)
	if err != nil {
		t.Fatalf("Condition: %v", err)
	}
	got, _ := cond.Density(vec.Of(3))
	want := math.Exp(-0.5) / (2 * math.Sqrt(2*math.Pi))
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("Density = %v, want %v", got, want)
	}
}

func TestConditionSingularCovariance(t *testing.T) {
	g := NewPoint(vec.Of(1, 2))
	cond, err := g.Condition(0)
	if err != nil {
		t.Fatalf("Condition of zero covariance: %v", err)
	}
	atMean, err := cond.LogDensity(vec.Of(1, 2))
	if err != nil {
		t.Fatalf("LogDensity: %v", err)
	}
	away, _ := cond.LogDensity(vec.Of(2, 2))
	if !(atMean > away) {
		t.Errorf("density at mean (%v) should exceed density away (%v)", atMean, away)
	}
	if math.IsInf(atMean, 0) || math.IsNaN(atMean) {
		t.Errorf("LogDensity at mean = %v", atMean)
	}
}

func TestMahalanobis(t *testing.T) {
	g, _ := New(vec.Of(0, 0), mat.Diagonal(4, 9))
	cond, _ := g.Condition(0)
	got, err := cond.Mahalanobis(vec.Of(2, 3))
	if err != nil {
		t.Fatalf("Mahalanobis: %v", err)
	}
	want := math.Sqrt(2)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Mahalanobis = %v, want %v", got, want)
	}
}

func TestInverseCached(t *testing.T) {
	g, _ := New(vec.Of(0, 0), mat.Diagonal(2, 4))
	cond, _ := g.Condition(0)
	inv1, err := cond.Inverse()
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	inv2, _ := cond.Inverse()
	if inv1 != inv2 {
		t.Errorf("Inverse should be cached (same pointer)")
	}
	if math.Abs(inv1.At(0, 0)-0.5) > 1e-9 {
		t.Errorf("Inverse[0][0] = %v, want 0.5", inv1.At(0, 0))
	}
}

func TestExpectedLogDensity(t *testing.T) {
	target, _ := New(vec.Of(0, 0), mat.Identity(2))
	cond, _ := target.Condition(0)
	// A point source at the mean: expected log density equals log density.
	point := NewPoint(vec.Of(0, 0))
	got, err := cond.ExpectedLogDensity(point)
	if err != nil {
		t.Fatalf("ExpectedLogDensity: %v", err)
	}
	base, _ := cond.LogDensity(vec.Of(0, 0))
	if math.Abs(got-base) > 1e-9 {
		t.Errorf("ExpectedLogDensity of point = %v, want %v", got, base)
	}
	// A wide source at the same mean must score lower than the point.
	wide, _ := New(vec.Of(0, 0), mat.Diagonal(2, 2))
	gotWide, _ := cond.ExpectedLogDensity(wide)
	// Penalty is tr(I * diag(2,2))/2 = 2.
	if math.Abs(gotWide-(base-2)) > 1e-9 {
		t.Errorf("ExpectedLogDensity wide = %v, want %v", gotWide, base-2)
	}
}

func TestExpectedLogDensityMonteCarlo(t *testing.T) {
	// E_{x~src}[log N(x; target)] estimated by sampling should match.
	target, _ := New(vec.Of(1, -1), mustFromRows(t, [][]float64{{2, 0.3}, {0.3, 1}}))
	src, _ := New(vec.Of(0.5, 0), mustFromRows(t, [][]float64{{0.5, 0.1}, {0.1, 0.8}}))
	cond, err := target.Condition(0)
	if err != nil {
		t.Fatalf("Condition: %v", err)
	}
	want, err := cond.ExpectedLogDensity(src)
	if err != nil {
		t.Fatalf("ExpectedLogDensity: %v", err)
	}
	r := rng.New(5)
	mvn, err := rng.NewMVN(src.Mean, src.Cov)
	if err != nil {
		t.Fatalf("NewMVN: %v", err)
	}
	var run stats.Running
	for i := 0; i < 200000; i++ {
		lp, err := cond.LogDensity(mvn.Sample(r))
		if err != nil {
			t.Fatalf("LogDensity: %v", err)
		}
		run.Add(lp)
	}
	if math.Abs(run.Mean()-want) > 0.02 {
		t.Errorf("Monte Carlo E[log p] = %v, analytic = %v", run.Mean(), want)
	}
}

func mustFromRows(t *testing.T, rows [][]float64) *mat.Matrix {
	t.Helper()
	m, err := mat.FromRows(rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return m
}

func TestKL(t *testing.T) {
	a, _ := New(vec.Of(0), mat.Diagonal(1))
	b, _ := New(vec.Of(1), mat.Diagonal(1))
	ca, _ := a.Condition(0)
	cb, _ := b.Condition(0)
	// KL(a || b) for unit variances, means 0 and 1: 0.5.
	got, err := cb.KL(ca)
	if err != nil {
		t.Fatalf("KL: %v", err)
	}
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("KL = %v, want 0.5", got)
	}
	// KL(a || a) = 0.
	self, _ := ca.KL(ca)
	if math.Abs(self) > 1e-9 {
		t.Errorf("KL(a||a) = %v, want 0", self)
	}
}

func TestMergeTwoPoints(t *testing.T) {
	a := Component{Gaussian: NewPoint(vec.Of(0, 0)), Weight: 1}
	b := Component{Gaussian: NewPoint(vec.Of(2, 0)), Weight: 1}
	m, err := Merge([]Component{a, b})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if m.Weight != 2 {
		t.Errorf("weight = %v, want 2", m.Weight)
	}
	if !m.Mean.ApproxEqual(vec.Of(1, 0), 1e-12) {
		t.Errorf("mean = %v, want (1,0)", m.Mean)
	}
	// Variance along x: ((0-1)^2 + (2-1)^2)/2 = 1.
	if math.Abs(m.Cov.At(0, 0)-1) > 1e-12 || math.Abs(m.Cov.At(1, 1)) > 1e-12 {
		t.Errorf("cov = %v, want diag(1, 0)", m.Cov)
	}
}

func TestMergeWeighted(t *testing.T) {
	a := Component{Gaussian: NewPoint(vec.Of(0)), Weight: 3}
	b := Component{Gaussian: NewPoint(vec.Of(4)), Weight: 1}
	m, err := Merge([]Component{a, b})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if !m.Mean.ApproxEqual(vec.Of(1), 1e-12) {
		t.Errorf("mean = %v, want (1)", m.Mean)
	}
	// Var = (3*1 + 1*9)/4 = 3.
	if math.Abs(m.Cov.At(0, 0)-3) > 1e-12 {
		t.Errorf("var = %v, want 3", m.Cov.At(0, 0))
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Merge(nil) error = %v", err)
	}
	a := Component{Gaussian: NewPoint(vec.Of(0)), Weight: 1}
	b := Component{Gaussian: NewPoint(vec.Of(0, 0)), Weight: 1}
	if _, err := Merge([]Component{a, b}); err == nil {
		t.Errorf("dim mismatch should error")
	}
	c := Component{Gaussian: NewPoint(vec.Of(0)), Weight: 0}
	if _, err := Merge([]Component{a, c}); err == nil {
		t.Errorf("zero weight should error")
	}
}

// TestMergeMatchesDirectSummary verifies requirement R4 for the GM
// summary: merging summaries of sub-collections equals summarizing the
// union directly.
func TestMergeMatchesDirectSummary(t *testing.T) {
	r := rng.New(21)
	xs := make([]vec.Vector, 40)
	ws := make([]float64, 40)
	for i := range xs {
		xs[i] = vec.Of(r.UniformRange(-5, 5), r.UniformRange(-5, 5))
		ws[i] = r.UniformRange(0.1, 2)
	}
	summarize := func(lo, hi int) Component {
		mu, cov, err := stats.WeightedMeanCov(xs[lo:hi], ws[lo:hi])
		if err != nil {
			t.Fatalf("WeightedMeanCov: %v", err)
		}
		var w float64
		for _, x := range ws[lo:hi] {
			w += x
		}
		return Component{Gaussian: Gaussian{Mean: mu, Cov: cov}, Weight: w}
	}
	whole := summarize(0, 40)
	parts := []Component{summarize(0, 10), summarize(10, 25), summarize(25, 40)}
	merged, err := Merge(parts)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if math.Abs(merged.Weight-whole.Weight) > 1e-9 {
		t.Errorf("weight = %v, want %v", merged.Weight, whole.Weight)
	}
	if !merged.Mean.ApproxEqual(whole.Mean, 1e-9) {
		t.Errorf("mean = %v, want %v", merged.Mean, whole.Mean)
	}
	if !merged.Cov.ApproxEqual(whole.Cov, 1e-9) {
		t.Errorf("cov = %v, want %v", merged.Cov, whole.Cov)
	}
}

func TestMergeScaleInvariance(t *testing.T) {
	// R3: scaling all weights by alpha must not change the summary moments.
	a := Component{Gaussian: NewPoint(vec.Of(0, 1)), Weight: 1}
	b := Component{Gaussian: NewPoint(vec.Of(2, 3)), Weight: 2}
	m1, _ := Merge([]Component{a, b})
	a.Weight *= 7
	b.Weight *= 7
	m2, _ := Merge([]Component{a, b})
	if !m1.Mean.ApproxEqual(m2.Mean, 1e-12) || !m1.Cov.ApproxEqual(m2.Cov, 1e-12) {
		t.Errorf("summary changed under weight scaling: %v vs %v", m1, m2)
	}
}

func TestMixtureBasics(t *testing.T) {
	m := Mixture{
		{Gaussian: NewPoint(vec.Of(0, 0)), Weight: 1},
		{Gaussian: NewPoint(vec.Of(1, 1)), Weight: 3},
	}
	if m.TotalWeight() != 4 {
		t.Errorf("TotalWeight = %v", m.TotalWeight())
	}
	if m.Dim() != 2 {
		t.Errorf("Dim = %v", m.Dim())
	}
	var empty Mixture
	if empty.Dim() != 0 {
		t.Errorf("empty Dim = %v", empty.Dim())
	}
	mean, err := m.Mean()
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if !mean.ApproxEqual(vec.Of(0.75, 0.75), 1e-12) {
		t.Errorf("Mean = %v", mean)
	}
	if _, err := empty.Mean(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty Mean error = %v", err)
	}
	clone := m.Clone()
	clone[0].Mean[0] = 99
	if m[0].Mean[0] != 0 {
		t.Errorf("Clone aliases original")
	}
}

func TestMixtureLogDensity(t *testing.T) {
	g1, _ := New(vec.Of(0), mat.Diagonal(1))
	g2, _ := New(vec.Of(10), mat.Diagonal(1))
	m := Mixture{
		{Gaussian: g1, Weight: 1},
		{Gaussian: g2, Weight: 1},
	}
	lp, err := m.LogDensity(vec.Of(0), 0)
	if err != nil {
		t.Fatalf("LogDensity: %v", err)
	}
	// At 0, the far component contributes ~nothing: density ~ 0.5*N(0;0,1).
	want := math.Log(0.5 / math.Sqrt(2*math.Pi))
	if math.Abs(lp-want) > 1e-6 {
		t.Errorf("LogDensity = %v, want %v", lp, want)
	}
	var empty Mixture
	if _, err := empty.LogDensity(vec.Of(0), 0); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty LogDensity error = %v", err)
	}
}

func TestMixtureSample(t *testing.T) {
	g1, _ := New(vec.Of(-10, 0), mat.Identity(2))
	g2, _ := New(vec.Of(10, 0), mat.Identity(2))
	m := Mixture{
		{Gaussian: g1, Weight: 1},
		{Gaussian: g2, Weight: 3},
	}
	r := rng.New(31)
	samples, err := m.Sample(r, 10000, 0)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	var right int
	for _, s := range samples {
		if s[0] > 0 {
			right++
		}
	}
	p := float64(right) / float64(len(samples))
	if math.Abs(p-0.75) > 0.02 {
		t.Errorf("fraction from right component = %v, want ~0.75", p)
	}
	var empty Mixture
	if _, err := empty.Sample(r, 1, 0); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty Sample error = %v", err)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Errorf("LogSumExp(nil) should be -Inf")
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}), -1) {
		t.Errorf("LogSumExp of -Infs should be -Inf")
	}
	// Stability with large magnitudes.
	big := LogSumExp([]float64{1000, 1000})
	if math.Abs(big-(1000+math.Ln2)) > 1e-9 {
		t.Errorf("LogSumExp large = %v", big)
	}
}

func TestPropertyMergeAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.IntN(6)
		cs := make([]Component, n)
		for i := range cs {
			cs[i] = Component{
				Gaussian: NewPoint(vec.Of(r.UniformRange(-5, 5), r.UniformRange(-5, 5))),
				Weight:   r.UniformRange(0.1, 3),
			}
		}
		all, err := Merge(cs)
		if err != nil {
			return false
		}
		left, err := Merge(cs[:2])
		if err != nil {
			return false
		}
		staged, err := Merge(append([]Component{left}, cs[2:]...))
		if err != nil {
			return false
		}
		return staged.Mean.ApproxEqual(all.Mean, 1e-9) &&
			staged.Cov.ApproxEqual(all.Cov, 1e-9) &&
			math.Abs(staged.Weight-all.Weight) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyKLNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		mk := func() *Conditioned {
			g, err := New(
				vec.Of(r.UniformRange(-3, 3), r.UniformRange(-3, 3)),
				mat.Diagonal(r.UniformRange(0.1, 4), r.UniformRange(0.1, 4)),
			)
			if err != nil {
				return nil
			}
			c, err := g.Condition(0)
			if err != nil {
				return nil
			}
			return c
		}
		a, b := mk(), mk()
		if a == nil || b == nil {
			return false
		}
		kl, err := b.KL(a)
		if err != nil {
			return false
		}
		return kl >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkLogDensity(b *testing.B) {
	g, _ := New(vec.Of(0, 0), mat.Diagonal(2, 3))
	cond, _ := g.Condition(0)
	x := vec.Of(1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cond.LogDensity(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	r := rng.New(77)
	cs := make([]Component, 16)
	for i := range cs {
		cs[i] = Component{
			Gaussian: NewPoint(vec.Of(r.UniformRange(-5, 5), r.UniformRange(-5, 5))),
			Weight:   r.UniformRange(0.1, 2),
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(cs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLogSumExpSingle(t *testing.T) {
	if got := LogSumExp([]float64{-3.5}); got != -3.5 {
		t.Errorf("LogSumExp single = %v", got)
	}
}

func TestMixtureLogDensityMatchesManual(t *testing.T) {
	g1, _ := New(vec.Of(0), mat.Diagonal(1))
	g2, _ := New(vec.Of(2), mat.Diagonal(4))
	m := Mixture{{Gaussian: g1, Weight: 3}, {Gaussian: g2, Weight: 1}}
	x := vec.Of(1)
	got, err := m.LogDensity(x, 0)
	if err != nil {
		t.Fatalf("LogDensity: %v", err)
	}
	c1, _ := g1.Condition(0)
	c2, _ := g2.Condition(0)
	l1, _ := c1.Density(x)
	l2, _ := c2.Density(x)
	want := math.Log(0.75*l1 + 0.25*l2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("LogDensity = %v, want %v", got, want)
	}
}
