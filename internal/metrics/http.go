package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"
)

// Manifest identifies one run so that exported metrics are a diffable
// artifact: which binary, which configuration, which code revision,
// started when.
type Manifest struct {
	// Command is the binary name ("distclass-live", ...).
	Command string `json:"command"`
	// Config maps flag/option names to their effective values.
	Config map[string]string `json:"config"`
	// Seed is the run's random seed.
	Seed uint64 `json:"seed"`
	// Revision is the VCS revision baked into the binary ("unknown"
	// when built without VCS stamping).
	Revision string `json:"revision"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Start is the run's start time.
	Start time.Time `json:"start"`
}

// NewManifest fills in revision, toolchain and start time for a run.
func NewManifest(command string, seed uint64, config map[string]string) Manifest {
	return Manifest{
		Command:   command,
		Config:    config,
		Seed:      seed,
		Revision:  BuildRevision(),
		GoVersion: runtime.Version(),
		Start:     time.Now(),
	}
}

// BuildRevision returns the VCS revision recorded in the build info
// (suffixed "+dirty" for modified trees), or "unknown".
func BuildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// Handler serves the registry snapshot: expvar-style text by default,
// JSON with ?format=json.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// NewMux builds the observability mux: /metrics (registry snapshot),
// /manifest (run identity JSON) and /debug/pprof/* (live profiling).
func NewMux(r *Registry, man Manifest) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/manifest", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(man)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (":0" picks a free
// port). The caller must Close it.
func Serve(addr string, r *Registry, man Manifest) (*Server, error) {
	return ServeMux(addr, NewMux(r, man))
}

// ServeMux starts an observability endpoint serving an arbitrary mux —
// for callers that extend NewMux with more handlers (the live monitor
// registers /status, /health and /events on it) before binding. The
// caller must Close it.
func ServeMux(addr string, mux *http.ServeMux) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	//lint:allow gorolifecycle Serve returns when Server.Close closes the listener
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43571".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
