package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Errorf("Counter not get-or-create")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("x")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("Value = %v, want 1.5", got)
	}
	if r.Gauge("x") != g {
		t.Errorf("Gauge not get-or-create")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h, err := r.Histogram("lat", []float64{1, 2, 4})
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != 106 {
		t.Errorf("Sum = %v", h.Sum())
	}
	s := h.snapshot()
	want := []int64{2, 1, 1, 1} // (<=1)=0.5,1; (<=2)=1.5; (<=4)=3; overflow=100
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	// Existing histogram wins; bounds are ignored on re-registration.
	h2, err := r.Histogram("lat", []float64{9})
	if err != nil || h2 != h {
		t.Errorf("re-registration: %v, same=%v", err, h2 == h)
	}
}

func TestHistogramInvalidBounds(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Histogram("bad", nil); err == nil {
		t.Errorf("empty bounds accepted")
	}
	if _, err := r.Histogram("bad2", []float64{1, 1}); err == nil {
		t.Errorf("non-increasing bounds accepted")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustHistogram did not panic on invalid bounds")
		}
	}()
	r.MustHistogram("bad3", nil)
}

func TestMustHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("ok", []float64{1})
	if h == nil {
		t.Fatalf("nil histogram")
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 2, 3)
	if len(lin) != 3 || lin[0] != 0 || lin[1] != 2 || lin[2] != 4 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if len(exp) != 3 || exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
	// Degenerate parameters fall back to a single bound.
	if got := LinearBuckets(5, -1, 3); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate LinearBuckets = %v", got)
	}
	if got := ExponentialBuckets(0, 2, 3); len(got) != 1 {
		t.Errorf("degenerate ExponentialBuckets = %v", got)
	}
}

// TestSnapshotDeterminism checks that two registries populated the same
// way export byte-identical JSON and text, and that repeated snapshots
// of an idle registry are identical — the property that makes run
// artifacts diffable.
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in different orders on purpose.
		names := []string{"z.last", "a.first", "m.mid"}
		for _, n := range names {
			r.Counter(n).Add(3)
			r.Gauge(n + ".g").Set(0.25)
		}
		h := r.MustHistogram("h", []float64{1, 2})
		h.Observe(0.5)
		h.Observe(5)
		return r
	}
	exportJSON := func(r *Registry) string {
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return b.String()
	}
	exportText := func(r *Registry) string {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		return b.String()
	}
	r1, r2 := build(), build()
	if exportJSON(r1) != exportJSON(r2) {
		t.Errorf("JSON export not deterministic:\n%s\nvs\n%s", exportJSON(r1), exportJSON(r2))
	}
	if exportText(r1) != exportText(r2) {
		t.Errorf("text export not deterministic")
	}
	if exportJSON(r1) != exportJSON(r1) {
		t.Errorf("repeated JSON snapshots differ")
	}
	// JSON round-trips into the same snapshot shape.
	var s Snapshot
	if err := json.Unmarshal([]byte(exportJSON(r1)), &s); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if s.Counters["a.first"] != 3 || s.Gauges["m.mid.g"] != 0.25 {
		t.Errorf("snapshot content = %+v", s)
	}
	hs := s.Histograms["h"]
	if hs.Count != 2 || hs.Sum != 5.5 || len(hs.Counts) != 3 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

func TestWriteTextShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(1.5)
	r.MustHistogram("h", []float64{1}).Observe(2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	for _, want := range []string{"c 1\n", "g 1.5\n", "h{le=1} 0\n", "h{le=+Inf} 1\n", "h_count 1\n", "h_sum 2\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("text export missing %q:\n%s", want, out)
		}
	}
}

// TestWriteTextHistogramOrder checks that histogram lines come out as
// one block in ascending bound order (le=2 before le=10 despite "10"
// sorting lexically before "2"), followed by +Inf, _count and _sum.
func TestWriteTextHistogramOrder(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("h", []float64{2, 10})
	h.Observe(1)
	h.Observe(5)
	r.Counter("a").Inc()
	r.Counter("z").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	want := "a 1\nh{le=2} 1\nh{le=10} 2\nh{le=+Inf} 2\nh_count 2\nh_sum 6\nz 1\n"
	if got := b.String(); got != want {
		t.Errorf("text export order:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestConcurrentInstruments hammers every instrument type from many
// goroutines; run under -race this is the atomic hot-path check.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.MustHistogram("shared.hist", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if got := r.Counter("shared.counter").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("shared.gauge").Value(); got != float64(total) {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	h := r.MustHistogram("shared.hist", nil)
	if h.Count() != total || math.Abs(h.Sum()-float64(total)) > 1e-9 {
		t.Errorf("hist count=%d sum=%v, want %d", h.Count(), h.Sum(), total)
	}
}

func TestSumCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("livenet.node.0.sent").Add(2)
	r.Counter("livenet.node.1.sent").Add(3)
	r.Counter("livenet.node.0.received").Add(7)
	r.Counter("other.sent").Add(100)
	if got := r.SumCounters("livenet.node.", ".sent"); got != 5 {
		t.Errorf("SumCounters = %d, want 5", got)
	}
	if got := r.SumCounters("livenet.node.", ".received"); got != 7 {
		t.Errorf("SumCounters received = %d, want 7", got)
	}
}
