package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("live.sent").Add(42)
	r.Gauge("live.spread").Set(0.5)
	man := NewManifest("metrics-test", 7, map[string]string{"n": "8"})
	srv, err := Serve("127.0.0.1:0", r, man)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /metrics: text by default.
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "live.sent 42") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	// /metrics?format=json: a decodable Snapshot.
	code, body = get(t, base+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics json = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.Counters["live.sent"] != 42 || snap.Gauges["live.spread"] != 0.5 {
		t.Errorf("snapshot = %+v", snap)
	}
	// /manifest: run identity.
	code, body = get(t, base+"/manifest")
	if code != http.StatusOK {
		t.Fatalf("/manifest = %d", code)
	}
	var gotMan Manifest
	if err := json.Unmarshal([]byte(body), &gotMan); err != nil {
		t.Fatalf("manifest JSON: %v", err)
	}
	if gotMan.Command != "metrics-test" || gotMan.Seed != 7 || gotMan.Config["n"] != "8" {
		t.Errorf("manifest = %+v", gotMan)
	}
	if gotMan.Revision == "" || gotMan.GoVersion == "" || gotMan.Start.IsZero() {
		t.Errorf("manifest identity incomplete: %+v", gotMan)
	}
	// /debug/pprof/: index page and a cheap profile endpoint.
	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d %q", code, body)
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bogus", NewRegistry(), Manifest{}); err == nil {
		t.Errorf("bogus address accepted")
	}
}

func TestBuildRevision(t *testing.T) {
	if BuildRevision() == "" {
		t.Errorf("BuildRevision returned empty string")
	}
}
