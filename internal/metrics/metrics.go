// Package metrics is a small, stdlib-only instrumentation subsystem:
// counters, gauges and fixed-bucket histograms behind a Registry, with
// atomic hot paths and a deterministic snapshot/export API (JSON and
// expvar-style text).
//
// Instruments are get-or-create by name: the first call registers, every
// later call with the same name returns the same instrument, so layers
// that share a Registry (core protocol, sim driver, livenet cluster)
// aggregate into one namespace. Hot-path operations (Add, Set, Observe)
// are lock-free; only instrument creation and snapshotting take the
// registry lock. Callers on hot paths should look an instrument up once
// and keep the pointer.
//
// Naming convention: dotted lowercase paths, coarse-to-fine
// ("core.splits", "livenet.node.3.sent"). Snapshots render names in
// sorted order, so runs of the same configuration produce byte-identical
// exports — live runs become diffable artifacts.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i] (and > Bounds[i-1]); one implicit
// overflow bucket catches everything above the last bound.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds not strictly increasing at %d", i)
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	return h, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns the histogram's exportable state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// LinearBuckets returns n strictly increasing bounds start, start+width,
// start+2*width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		return []float64{start}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bounds start, start*factor,
// start*factor^2, ... — the usual shape for latencies.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry is a namespace of instruments.
type Registry struct {
	mu sync.Mutex
	// guarded by mu
	counters map[string]*Counter
	// guarded by mu
	gauges map[string]*Gauge
	// guarded by mu
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Later calls ignore bounds and return the
// existing histogram; invalid bounds on first use return an error.
func (r *Registry) Histogram(name string, bounds []float64) (*Histogram, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h, nil
	}
	h, err := newHistogram(bounds)
	if err != nil {
		return nil, fmt.Errorf("%w (histogram %q)", err, name)
	}
	r.histograms[name] = h
	return h, nil
}

// MustHistogram is Histogram for static, known-good bounds; it panics on
// invalid bounds.
func (r *Registry) MustHistogram(name string, bounds []float64) *Histogram {
	h, err := r.Histogram(name, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// HistogramSnapshot is a histogram's exportable state. Counts has one
// entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is a point-in-time copy of every instrument. Map keys
// marshal in sorted order (encoding/json), so the JSON form is
// deterministic for a given registry state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current state of every instrument. Individual
// reads are atomic; the snapshot as a whole is not a consistent cut
// across concurrently updated instruments.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return nil
}

// WriteText writes the snapshot as expvar-style text: one
// "name value" line per counter and gauge, and per-bucket cumulative
// "name{le=bound} count" lines plus _count and _sum for histograms.
// Instruments are sorted by name, but each histogram's lines stay
// together in ascending bound order (le=2 before le=10, then +Inf,
// _count, _sum) so the cumulative buckets read naturally.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	// One block per instrument; blocks sort by name (ties broken by
	// instrument type so the output is deterministic even if a counter
	// and a gauge share a name), lines within a block keep their order.
	type block struct {
		name  string
		typ   int
		lines []string
	}
	var blocks []block
	for name, v := range s.Counters {
		blocks = append(blocks, block{name, 0, []string{fmt.Sprintf("%s %d", name, v)}})
	}
	for name, v := range s.Gauges {
		blocks = append(blocks, block{name, 1, []string{fmt.Sprintf("%s %g", name, v)}})
	}
	for name, h := range s.Histograms {
		lines := make([]string, 0, len(h.Bounds)+3)
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			lines = append(lines, fmt.Sprintf("%s{le=%g} %d", name, b, cum))
		}
		lines = append(lines,
			fmt.Sprintf("%s{le=+Inf} %d", name, h.Count),
			fmt.Sprintf("%s_count %d", name, h.Count),
			fmt.Sprintf("%s_sum %g", name, h.Sum))
		blocks = append(blocks, block{name, 2, lines})
	}
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].name != blocks[j].name {
			return blocks[i].name < blocks[j].name
		}
		return blocks[i].typ < blocks[j].typ
	})
	for _, b := range blocks {
		for _, line := range b.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return fmt.Errorf("metrics: %w", err)
			}
		}
	}
	return nil
}

// SumCounters returns the sum of all counters whose name starts with
// prefix and ends with suffix — e.g. SumCounters("livenet.node.",
// ".sent") checks per-node counters against the aggregate.
func (r *Registry) SumCounters(prefix, suffix string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for name, c := range r.counters {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			total += c.Value()
		}
	}
	return total
}
