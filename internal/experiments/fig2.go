package experiments

import (
	"fmt"
	"math"

	"distclass/internal/core"
	"distclass/internal/engine"
	"distclass/internal/gauss"
	"distclass/internal/gm"
	"distclass/internal/rng"
	"distclass/internal/topology"
	"distclass/internal/vec"
)

// Fig2Config parameterizes the Figure 2 experiment: GM classification of
// 2-D values drawn from three Gaussians, on a fully connected network,
// run until the nodes' mixtures stop moving. The paper uses N = 1000 and
// K = 7.
type Fig2Config struct {
	// N is the network size (default 1000).
	N int
	// K is the collection bound (default 7).
	K int
	// MaxRounds bounds the run (default 60).
	MaxRounds int
	// Tol is the convergence threshold on the sampled inter-node
	// classification spread (default 1e-3).
	Tol float64
	// Seed drives dataset generation and gossip (default 1).
	Seed uint64
}

func (c Fig2Config) withDefaults() Fig2Config {
	if c.N == 0 {
		c.N = 1000
	}
	if c.K == 0 {
		c.K = 7
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 60
	}
	//lint:allow floatcmp zero value selects the default
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig2Result reports a Figure 2 run.
type Fig2Result struct {
	// Estimated is node 0's final mixture — the paper's Figure 2c.
	Estimated gauss.Mixture
	// True is the generating mixture — the paper's Figure 2a.
	True gauss.Mixture
	// ConvergedRound is the first round at which the sampled spread fell
	// below Tol (-1 if it never did within MaxRounds).
	ConvergedRound int
	// RoundsRun is the number of rounds executed.
	RoundsRun int
	// MeanCoverError is the weight-averaged distance from each true
	// component mean to the nearest estimated component mean — how well
	// the estimate covers the real clusters.
	MeanCoverError float64
	// FinalSpread is the sampled inter-node spread at the end.
	FinalSpread float64
	// Values are the sampled input values (one per node), kept for
	// rendering the Figure 2b scatter.
	Values []vec.Vector
}

// RunFigure2 executes the Figure 2 experiment.
func RunFigure2(cfg Fig2Config) (*Fig2Result, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values, err := Figure2Dataset(cfg.N, r)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 dataset: %w", err)
	}
	method := gm.Method{}
	nodes := make([]*core.Node, cfg.N)
	agents := make([]engine.Agent[core.Classification], cfg.N)
	for i := range nodes {
		n, err := core.NewNode(i, values[i], nil, core.Config{Method: method, K: cfg.K})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig2 node %d: %w", i, err)
		}
		nodes[i] = n
		agents[i] = &ClassifierAgent{Node: n}
	}
	graph, err := topology.Full(cfg.N)
	if err != nil {
		return nil, err
	}
	net, err := engine.NewRoundDriver(graph, agents, r.Split(), engine.Options[core.Classification]{})
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{True: Figure2TrueMixture(), ConvergedRound: -1, Values: values}
	stable := 0
	err = net.RunRounds(cfg.MaxRounds, func(round int) error {
		res.RoundsRun = round + 1
		spread, err := Spread(nodes, method, 4)
		if err != nil {
			return err
		}
		res.FinalSpread = spread
		if spread < cfg.Tol {
			stable++
			if stable >= 3 {
				if res.ConvergedRound < 0 {
					res.ConvergedRound = round + 1
				}
				return engine.ErrStop
			}
		} else {
			stable = 0
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 run: %w", err)
	}
	mix, err := gm.ToMixture(nodes[0].Classification())
	if err != nil {
		return nil, err
	}
	res.Estimated = mix
	res.MeanCoverError, err = MeanCoverError(res.True, res.Estimated)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// MeanCoverError returns the weight-averaged distance from each true
// component mean to the nearest estimated component mean.
func MeanCoverError(truth, estimated gauss.Mixture) (float64, error) {
	if len(truth) == 0 || len(estimated) == 0 {
		return 0, fmt.Errorf("experiments: empty mixture in cover error")
	}
	totalW := truth.TotalWeight()
	var sum float64
	for _, tc := range truth {
		best := math.Inf(1)
		for _, ec := range estimated {
			d, err := vec.Dist(tc.Mean, ec.Mean)
			if err != nil {
				return 0, err
			}
			if d < best {
				best = d
			}
		}
		sum += tc.Weight / totalW * best
	}
	return sum, nil
}

// Table renders the estimated mixture next to the true one.
func (r *Fig2Result) Table() string {
	headers := []string{"component", "weight", "mean", "cov diag"}
	var rows [][]string
	for i, c := range r.True {
		rows = append(rows, []string{
			fmt.Sprintf("true %d", i), F(c.Weight), c.Mean.String(),
			fmt.Sprintf("(%s, %s)", F(c.Cov.At(0, 0)), F(c.Cov.At(1, 1))),
		})
	}
	for i, c := range r.Estimated {
		rows = append(rows, []string{
			fmt.Sprintf("est %d", i), F(c.Weight), c.Mean.String(),
			fmt.Sprintf("(%s, %s)", F(c.Cov.At(0, 0)), F(c.Cov.At(1, 1))),
		})
	}
	s := FormatTable(headers, rows)
	return s + fmt.Sprintf("converged round: %d   mean cover error: %s   spread: %s\n",
		r.ConvergedRound, F(r.MeanCoverError), F(r.FinalSpread))
}
