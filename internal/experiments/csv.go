package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes headers and rows as RFC-4180 CSV — the format
// plotting tools consume to regenerate the paper's figures graphically.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for i, row := range rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func fs(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// Fig3CSV writes the Figure 3 sweep as CSV.
func Fig3CSV(w io.Writer, rows []Fig3Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{fs(r.Delta), fs(r.MissPct), fs(r.RobustErr), fs(r.RegularErr)}
	}
	return WriteCSV(w, []string{"delta", "missed_outliers_pct", "robust_err", "regular_err"}, out)
}

// Fig4CSV writes the Figure 4 traces as CSV.
func Fig4CSV(w io.Writer, rows []Fig4Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.Round),
			fs(r.RobustNoCrash), fs(r.RegularNoCrash),
			fs(r.RobustCrash), fs(r.RegularCrash),
		}
	}
	return WriteCSV(w, []string{"round", "robust", "regular", "robust_crash", "regular_crash"}, out)
}

// Fig2CSV writes the Figure 2 mixtures (true and estimated components)
// as CSV; the kind column distinguishes them.
func Fig2CSV(w io.Writer, res *Fig2Result) error {
	var out [][]string
	add := func(kind string, mixIdx int, weight float64, mx, my, cxx, cyy float64) {
		out = append(out, []string{
			kind, strconv.Itoa(mixIdx), fs(weight), fs(mx), fs(my), fs(cxx), fs(cyy),
		})
	}
	for i, c := range res.True {
		add("true", i, c.Weight, c.Mean[0], c.Mean[1], c.Cov.At(0, 0), c.Cov.At(1, 1))
	}
	for i, c := range res.Estimated {
		add("estimated", i, c.Weight, c.Mean[0], c.Mean[1], c.Cov.At(0, 0), c.Cov.At(1, 1))
	}
	return WriteCSV(w, []string{"kind", "component", "weight", "mean_x", "mean_y", "var_x", "var_y"}, out)
}
