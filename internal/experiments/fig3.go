package experiments

import (
	"errors"
	"fmt"

	"distclass/internal/aggregate"
	"distclass/internal/centroids"
	"distclass/internal/core"
	"distclass/internal/engine"
	"distclass/internal/gm"
	"distclass/internal/rng"
	"distclass/internal/stats"
	"distclass/internal/topology"
	"distclass/internal/vec"
)

// Fig3Config parameterizes the Figure 3 sweep: a robust average in the
// presence of outliers whose distance Delta from the good distribution
// varies. The paper uses 950 good values, 50 outliers, K = 2 and a
// fully connected 1000-node network.
type Fig3Config struct {
	// NGood and NOut size the two sub-populations (defaults 950/50).
	NGood, NOut int
	// Deltas are the outlier mean offsets to sweep (default 0..25).
	Deltas []float64
	// K is the collection bound (default 2).
	K int
	// Rounds per run (default 50).
	Rounds int
	// Seed drives all randomness (default 1).
	Seed uint64
}

func (c Fig3Config) withDefaults() Fig3Config {
	if c.NGood == 0 {
		c.NGood = 950
	}
	if c.NOut == 0 {
		c.NOut = 50
	}
	if len(c.Deltas) == 0 {
		c.Deltas = make([]float64, 26)
		for i := range c.Deltas {
			c.Deltas[i] = float64(i)
		}
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.Rounds == 0 {
		c.Rounds = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig3Row is one point of the Figure 3 series.
type Fig3Row struct {
	// Delta is the outlier mean offset.
	Delta float64
	// MissPct is the average percentage of ground-truth-outlier weight
	// that ended up in the good collection (the dotted line).
	MissPct float64
	// RobustErr is the average distance between the nodes' robust mean
	// estimate (mean of their heavier collection) and the true mean
	// (0,0) (the solid line).
	RobustErr float64
	// RegularErr is the same error for plain push-sum averaging over all
	// values, outliers included (the dashed line).
	RegularErr float64
}

// RunFigure3 executes the sweep and returns one row per Delta.
func RunFigure3(cfg Fig3Config) ([]Fig3Row, error) {
	cfg = cfg.withDefaults()
	rows := make([]Fig3Row, 0, len(cfg.Deltas))
	for i, delta := range cfg.Deltas {
		row, err := runFig3Point(cfg, delta, cfg.Seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("experiments: fig3 delta %v: %w", delta, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runFig3Point(cfg Fig3Config, delta float64, seed uint64) (Fig3Row, error) {
	r := rng.New(seed)
	values, outlier, err := Figure3Dataset(cfg.NGood, cfg.NOut, delta, r)
	if err != nil {
		return Fig3Row{}, err
	}
	n := len(values)
	graph, err := topology.Full(n)
	if err != nil {
		return Fig3Row{}, err
	}

	// Robust network: GM classification with tag auxiliaries recording
	// exactly how much good/outlier weight each collection carries.
	method := gm.Method{}
	nodes := make([]*core.Node, n)
	agents := make([]engine.Agent[core.Classification], n)
	for i := range nodes {
		aux := vec.New(2)
		if outlier[i] {
			aux[1] = 1
		} else {
			aux[0] = 1
		}
		node, err := core.NewNode(i, values[i], aux, core.Config{Method: method, K: cfg.K})
		if err != nil {
			return Fig3Row{}, err
		}
		nodes[i] = node
		agents[i] = &ClassifierAgent{Node: node}
	}
	net, err := engine.NewRoundDriver(graph, agents, r.Split(), engine.Options[core.Classification]{})
	if err != nil {
		return Fig3Row{}, err
	}
	if err := net.RunRounds(cfg.Rounds, nil); err != nil {
		return Fig3Row{}, err
	}

	// Regular network: push-sum over the same values and graph.
	regular, err := runPushSum(graph, values, cfg.Rounds, r.Split(), 0, nil)
	if err != nil {
		return Fig3Row{}, err
	}

	row := Fig3Row{Delta: delta}
	truth := vec.Of(0, 0)
	var robustEst []vec.Vector
	var missSum float64
	missCount := 0
	for _, node := range nodes {
		est, err := RobustEstimate(node)
		if err != nil {
			return Fig3Row{}, err
		}
		robustEst = append(robustEst, est)
		ratio, ok := OutlierMissRatio(node)
		if ok {
			missSum += ratio
			missCount++
		}
	}
	if row.RobustErr, err = stats.MeanError(robustEst, truth); err != nil {
		return Fig3Row{}, err
	}
	if missCount > 0 {
		row.MissPct = 100 * missSum / float64(missCount)
	}
	if row.RegularErr, err = stats.MeanError(regular, truth); err != nil {
		return Fig3Row{}, err
	}
	return row, nil
}

// runPushSum runs the regular-aggregation baseline and returns the
// surviving nodes' estimates. aliveOut, when non-nil, receives a
// callback view of per-round estimates (used by Figure 4).
func runPushSum(graph *topology.Graph, values []vec.Vector, rounds int, r *rng.RNG, crashProb float64, perRound func(round int, estimates []vec.Vector) error) ([]vec.Vector, error) {
	n := len(values)
	nodes := make([]*aggregate.Node, n)
	agents := make([]engine.Agent[aggregate.Message], n)
	for i := range nodes {
		node, err := aggregate.NewNode(i, values[i])
		if err != nil {
			return nil, err
		}
		nodes[i] = node
		agents[i] = &PushSumAgent{Node: node}
	}
	net, err := engine.NewRoundDriver(graph, agents, r, engine.Options[aggregate.Message]{CrashProb: crashProb})
	if err != nil {
		return nil, err
	}
	collect := func() ([]vec.Vector, error) {
		var out []vec.Vector
		for i, node := range nodes {
			if !net.Alive(i) {
				continue
			}
			est, err := node.Estimate()
			if err != nil {
				return nil, err
			}
			out = append(out, est)
		}
		return out, nil
	}
	err = net.RunRounds(rounds, func(round int) error {
		if perRound == nil {
			return nil
		}
		ests, err := collect()
		if err != nil {
			return err
		}
		return perRound(round, ests)
	})
	if err != nil {
		return nil, err
	}
	return collect()
}

// RobustEstimate returns a node's outlier-robust mean estimate: the mean
// of its heaviest collection (with K = 2, hopefully the good one). It
// works for both built-in summary types.
func RobustEstimate(n *core.Node) (vec.Vector, error) {
	return RobustEstimateOf(n.Classification())
}

// RobustEstimateOf is RobustEstimate over a bare classification — the
// form live deployments hand out, where there is no *core.Node to ask.
func RobustEstimateOf(cls core.Classification) (vec.Vector, error) {
	if len(cls) == 0 {
		return nil, errors.New("experiments: node holds no collections")
	}
	best := 0
	for i, c := range cls {
		if c.Weight > cls[best].Weight {
			best = i
		}
	}
	switch s := cls[best].Summary.(type) {
	case gm.Summary:
		return s.G.Mean, nil
	case centroids.Centroid:
		return s.Point, nil
	default:
		return nil, fmt.Errorf("experiments: unexpected summary type %T", cls[best].Summary)
	}
}

// OutlierMissRatio returns the fraction of the node's ground-truth
// outlier weight (tag auxiliary component 1) that sits in its heaviest
// ("good") collection. ok is false when the node currently holds no
// outlier weight.
func OutlierMissRatio(n *core.Node) (ratio float64, ok bool) {
	cls := n.Classification()
	if len(cls) == 0 {
		return 0, false
	}
	best := 0
	var totalOut float64
	for i, c := range cls {
		if c.Weight > cls[best].Weight {
			best = i
		}
		if c.Aux.Dim() == 2 {
			totalOut += c.Aux[1]
		}
	}
	if totalOut <= 1e-12 {
		return 0, false
	}
	return cls[best].Aux[1] / totalOut, true
}

// Fig3Table renders the sweep.
func Fig3Table(rows []Fig3Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{F(r.Delta), F(r.MissPct), F(r.RobustErr), F(r.RegularErr)}
	}
	return FormatTable([]string{"delta", "missed outliers %", "robust err", "regular err"}, out)
}

// OutlierMethodRow compares instantiations at outlier removal.
type OutlierMethodRow struct {
	Method    string
	RobustErr float64
}

// RunOutlierMethodComparison quantifies Figure 1's motivation on the
// Figure 3 workload: the variance-blind centroids instantiation and the
// variance-aware GM instantiation both run K = 2 on the same
// outlier-contaminated data; the robust-mean error shows how much the
// Gaussian summaries matter.
func RunOutlierMethodComparison(delta float64, nGood, nOut, rounds int, seed uint64) ([]OutlierMethodRow, error) {
	r := rng.New(seed)
	values, _, err := Figure3Dataset(nGood, nOut, delta, r)
	if err != nil {
		return nil, err
	}
	graph, err := topology.Full(len(values))
	if err != nil {
		return nil, err
	}
	truth := vec.Of(0, 0)
	var rows []OutlierMethodRow
	for _, method := range []core.Method{centroids.Method{}, gm.Method{}} {
		nodes, net, err := buildClassifierNetwork(graph, values, method, 2, 0, r.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: method %s: %w", method.Name(), err)
		}
		if err := net.RunRounds(rounds, nil); err != nil {
			return nil, err
		}
		var ests []vec.Vector
		for _, node := range nodes {
			est, err := RobustEstimate(node)
			if err != nil {
				return nil, err
			}
			ests = append(ests, est)
		}
		e, err := stats.MeanError(ests, truth)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OutlierMethodRow{Method: method.Name(), RobustErr: e})
	}
	return rows, nil
}
