package experiments

import (
	"fmt"

	"distclass/internal/gauss"
	"distclass/internal/gm"
	"distclass/internal/mat"
	"distclass/internal/vec"
)

// Fig1Result reports the Figure 1 association example: a new value that
// the centroid rule assigns to the tight collection A (whose centroid is
// nearer) while the Gaussian rule assigns it to the wide collection B
// (under which it is likelier).
type Fig1Result struct {
	// Value is the probe value being associated.
	Value vec.Vector
	// A is the tight collection, B the wide one.
	A, B gauss.Component
	// DistToA and DistToB are centroid (Euclidean) distances.
	DistToA, DistToB float64
	// LogDensA and LogDensB are weighted Gaussian log-densities.
	LogDensA, LogDensB float64
	// CentroidPick and GMPick name the collection ("A"/"B") chosen by
	// each rule.
	CentroidPick, GMPick string
}

// RunFigure1 reproduces the Figure 1 scenario.
func RunFigure1() (*Fig1Result, error) {
	tight, err := gauss.New(vec.Of(4, 0), mat.Diagonal(0.05, 0.05))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 collection A: %w", err)
	}
	wide, err := gauss.New(vec.Of(0, 0), mat.Diagonal(9, 9))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 collection B: %w", err)
	}
	res := &Fig1Result{
		Value: vec.Of(2.6, 0),
		A:     gauss.Component{Gaussian: tight, Weight: 1},
		B:     gauss.Component{Gaussian: wide, Weight: 1},
	}
	if res.DistToA, err = vec.Dist(res.Value, tight.Mean); err != nil {
		return nil, err
	}
	if res.DistToB, err = vec.Dist(res.Value, wide.Mean); err != nil {
		return nil, err
	}
	res.CentroidPick = "B"
	if res.DistToA < res.DistToB {
		res.CentroidPick = "A"
	}
	mix := gauss.Mixture{res.A, res.B}
	idx, err := gm.Assign(mix, res.Value, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 assign: %w", err)
	}
	res.GMPick = []string{"A", "B"}[idx]
	condA, err := tight.Condition(0)
	if err != nil {
		return nil, err
	}
	condB, err := wide.Condition(0)
	if err != nil {
		return nil, err
	}
	if res.LogDensA, err = condA.LogDensity(res.Value); err != nil {
		return nil, err
	}
	if res.LogDensB, err = condB.LogDensity(res.Value); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the result as the rows the paper's Figure 1 caption
// narrates.
func (r *Fig1Result) Table() string {
	rows := [][]string{
		{"A (tight)", F(r.DistToA), F(r.LogDensA)},
		{"B (wide)", F(r.DistToB), F(r.LogDensB)},
	}
	s := FormatTable([]string{"collection", "dist to centroid", "log density"}, rows)
	return s + fmt.Sprintf("centroid rule picks %s; Gaussian rule picks %s\n", r.CentroidPick, r.GMPick)
}
