package experiments

import (
	"fmt"
	"strings"
)

// FormatTable renders headers and rows as an aligned text table, the
// output format of cmd/experiments and the bench harness.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with 4 significant digits for table cells.
func F(x float64) string { return fmt.Sprintf("%.4g", x) }
