// Package experiments reproduces the paper's evaluation (§5.3): the
// Figure 1 association example, the Figure 2 multidimensional
// classification, the Figure 3 outlier-robust average sweep and the
// Figure 4 crash/convergence traces, plus the ablation studies listed in
// DESIGN.md. Each driver builds the datasets, wires protocol nodes into
// the simulator and reports the same series the paper plots.
package experiments

import (
	"distclass/internal/aggregate"
	"distclass/internal/core"
	"distclass/internal/engine"
	"distclass/internal/histogram"
)

// ClassifierAgent adapts a generic classification node (Algorithm 1) to
// the simulator.
type ClassifierAgent struct {
	Node *core.Node
}

var _ engine.Agent[core.Classification] = (*ClassifierAgent)(nil)

// Emit splits the node's classification and sends one half.
func (a *ClassifierAgent) Emit() (core.Classification, bool) {
	out := a.Node.Split()
	return out, len(out) > 0
}

// Receive absorbs the round's incoming classifications as one batch,
// matching the paper's simulation methodology (§5.3).
func (a *ClassifierAgent) Receive(batch []core.Classification) error {
	return a.Node.Absorb(batch...)
}

// PushSumAgent adapts a push-sum averaging node (the paper's "regular
// aggregation" baseline) to the simulator.
type PushSumAgent struct {
	Node *aggregate.Node
}

var _ engine.Agent[aggregate.Message] = (*PushSumAgent)(nil)

// Emit sends half of the node's mass.
func (a *PushSumAgent) Emit() (aggregate.Message, bool) {
	return a.Node.Split(), true
}

// Receive folds in the round's messages.
func (a *PushSumAgent) Receive(batch []aggregate.Message) error {
	return a.Node.Receive(batch)
}

// HistogramAgent adapts a gossip histogram node to the simulator.
type HistogramAgent struct {
	Node *histogram.Node
}

var _ engine.Agent[histogram.Message] = (*HistogramAgent)(nil)

// Emit sends half of the node's bin mass.
func (a *HistogramAgent) Emit() (histogram.Message, bool) {
	return a.Node.Split(), true
}

// Receive folds in the round's messages.
func (a *HistogramAgent) Receive(batch []histogram.Message) error {
	return a.Node.Receive(batch)
}

// ClassificationSize measures a classification message by its number of
// collections (the unit the paper's message-size discussion uses: the
// payload depends only on k and d, never on n).
func ClassificationSize(cl core.Classification) int { return len(cl) }
