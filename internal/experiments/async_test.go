package experiments

import (
	"math"
	"testing"

	"distclass/internal/centroids"
	"distclass/internal/core"
	"distclass/internal/engine"
	"distclass/internal/gm"
	"distclass/internal/rng"
	"distclass/internal/topology"
	"distclass/internal/vec"
)

// TestAsyncDistributedConvergence is Theorem 1 as an executable check:
// under a fully asynchronous, randomly scheduled execution over several
// connected topologies, with per-message (not batched) delivery, all
// nodes' classifications converge to a common destination — for both
// published instantiations.
func TestAsyncDistributedConvergence(t *testing.T) {
	methods := []core.Method{centroids.Method{}, gm.Method{}}
	kinds := []topology.Kind{topology.KindFull, topology.KindRing, topology.KindStar, topology.KindGrid}
	for _, method := range methods {
		for _, kind := range kinds {
			t.Run(method.Name()+"/"+string(kind), func(t *testing.T) {
				const n = 12
				r := rng.New(101)
				graph, err := topology.Build(kind, n, r.Split())
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				values := bimodalDataset(n, r)
				nodes := make([]*core.Node, n)
				agents := make([]engine.Agent[core.Classification], n)
				for i := range nodes {
					node, err := core.NewNode(i, values[i], nil,
						core.Config{Method: method, K: 2, Q: 1.0 / 4096})
					if err != nil {
						t.Fatalf("NewNode: %v", err)
					}
					nodes[i] = node
					agents[i] = &ClassifierAgent{Node: node}
				}
				async, err := engine.NewAsyncDriver(graph, agents, r.Split(), engine.Options[core.Classification]{})
				if err != nil {
					t.Fatalf("NewAsync: %v", err)
				}
				// Long random schedule, then drain in-flight messages.
				budget := 60000
				if kind == topology.KindRing {
					budget = 200000 // rings mix slowly
				}
				if err := async.RunSteps(budget, nil); err != nil {
					t.Fatalf("RunSteps: %v", err)
				}
				if err := async.Drain(); err != nil {
					t.Fatalf("Drain: %v", err)
				}

				// Weight conservation across the whole system.
				var total float64
				for _, node := range nodes {
					total += node.Weight()
				}
				if math.Abs(total-float64(n)) > 1e-9 {
					t.Errorf("total weight = %v, want %d", total, n)
				}

				// Common destination: every pair of nodes is close under
				// the method's summary distance.
				for i := 1; i < n; i++ {
					d, err := core.Dissimilarity(
						nodes[0].Classification(), nodes[i].Classification(), method)
					if err != nil {
						t.Fatalf("Dissimilarity: %v", err)
					}
					if d > 0.35 {
						t.Errorf("nodes 0 and %d disagree by %v", i, d)
					}
				}

				// The classification is meaningful: both cluster centers
				// appear in node 0's view.
				var sawLow, sawHigh bool
				for _, c := range nodes[0].Classification() {
					var mean vec.Vector
					switch s := c.Summary.(type) {
					case centroids.Centroid:
						mean = s.Point
					case gm.Summary:
						mean = s.G.Mean
					}
					switch {
					case math.Abs(mean[0]+4) < 1.5:
						sawLow = true
					case math.Abs(mean[0]-4) < 1.5:
						sawHigh = true
					}
				}
				if !sawLow || !sawHigh {
					t.Errorf("node 0 missing a cluster: %v", nodes[0].Classification())
				}
			})
		}
	}
}

// TestAsyncLemma2AcrossTopologies re-checks the monotone reference
// angle property (Lemma 2) on asynchronous runs with full mixture-space
// auxiliaries over non-trivial topologies.
func TestAsyncLemma2AcrossTopologies(t *testing.T) {
	for _, kind := range []topology.Kind{topology.KindRing, topology.KindStar} {
		t.Run(string(kind), func(t *testing.T) {
			const n = 6
			r := rng.New(103)
			graph, err := topology.Build(kind, n, r.Split())
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			values := bimodalDataset(n, r)
			nodes := make([]*core.Node, n)
			agents := make([]engine.Agent[core.Classification], n)
			for i := range nodes {
				aux := vec.New(n)
				aux[i] = 1
				node, err := core.NewNode(i, values[i], aux,
					core.Config{Method: gm.Method{}, K: 2, Q: 1.0 / 4096})
				if err != nil {
					t.Fatalf("NewNode: %v", err)
				}
				nodes[i] = node
				agents[i] = &ClassifierAgent{Node: node}
			}
			async, err := engine.NewAsyncDriver(graph, agents, r.Split(), engine.Options[core.Classification]{})
			if err != nil {
				t.Fatalf("NewAsync: %v", err)
			}
			pool := func() []core.Collection {
				var p []core.Collection
				for _, node := range nodes {
					p = append(p, node.Classification()...)
				}
				return p
			}
			prev, err := core.MaxReferenceAngles(pool())
			if err != nil {
				t.Fatalf("MaxReferenceAngles: %v", err)
			}
			for step := 0; step < 3000; step++ {
				if err := async.Step(); err != nil {
					t.Fatalf("Step: %v", err)
				}
				if step%25 != 0 {
					continue
				}
				// Note: in-flight collections also belong to the pool; a
				// node-only pool can only shrink the max further, so the
				// monotonicity check remains sound between samples only
				// if we include them. Drain-free sampling: skip rounds
				// with in-flight mass.
				if async.InFlight() > 0 {
					continue
				}
				cur, err := core.MaxReferenceAngles(pool())
				if err != nil {
					t.Fatalf("MaxReferenceAngles: %v", err)
				}
				for i := range cur {
					if cur[i] > prev[i]+1e-9 {
						t.Fatalf("step %d: axis %d angle grew from %v to %v",
							step, i, prev[i], cur[i])
					}
				}
				prev = cur
			}
		})
	}
}
