package experiments

import (
	"errors"
	"fmt"
	"math"

	"distclass/internal/core"
	"distclass/internal/engine"
	"distclass/internal/gm"
	"distclass/internal/metrics"
	"distclass/internal/rng"
	"distclass/internal/stats"
	"distclass/internal/topology"
	"distclass/internal/trace"
	"distclass/internal/vec"
)

// Fig4Config parameterizes the Figure 4 experiment: convergence speed
// and crash robustness of the robust (GM) and regular (push-sum) mean
// estimators, with and without per-round node crashes. The paper uses
// Delta = 10 and crash probability 0.05.
type Fig4Config struct {
	// NGood and NOut size the populations (defaults 950/50).
	NGood, NOut int
	// Delta is the outlier offset (default 10).
	Delta float64
	// K is the collection bound (default 2).
	K int
	// Rounds traces this many rounds (default 50).
	Rounds int
	// CrashProb is the per-round crash probability in the crashing runs
	// (default 0.05).
	CrashProb float64
	// Backend selects the engine substrate for the robust (GM) traces
	// (default BackendRound). On the deterministic backends the engine
	// injects crashes per round; on the concurrent backends (chan,
	// pipe, tcp) the harness samples explicit Kills between wall-clock
	// rounds of one gossip interval each. The regular push-sum baseline
	// always runs on the round driver.
	Backend engine.Backend
	// Seed drives all randomness (default 1).
	Seed uint64
	// Metrics, when set, aggregates protocol and simulator counters
	// across every trace sharing this config.
	Metrics *metrics.Registry
	// Trace, when set, receives protocol events plus a per-round
	// estimation-error probe from every trace sharing this config.
	Trace trace.Sink
}

func (c Fig4Config) withDefaults() Fig4Config {
	if c.NGood == 0 {
		c.NGood = 950
	}
	if c.NOut == 0 {
		c.NOut = 50
	}
	//lint:allow floatcmp zero value selects the default
	if c.Delta == 0 {
		c.Delta = 10
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.Rounds == 0 {
		c.Rounds = 50
	}
	//lint:allow floatcmp zero value selects the default
	if c.CrashProb == 0 {
		c.CrashProb = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig4Row is one round of the four error traces.
type Fig4Row struct {
	Round          int
	RobustNoCrash  float64
	RegularNoCrash float64
	RobustCrash    float64
	RegularCrash   float64
}

// RunFigure4 executes all four traces over the same dataset and returns
// one row per round. Errors are averaged over nodes still alive in the
// respective run.
func RunFigure4(cfg Fig4Config) ([]Fig4Row, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values, outlier, err := Figure3Dataset(cfg.NGood, cfg.NOut, cfg.Delta, r)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4 dataset: %w", err)
	}
	graph, err := topology.Full(len(values))
	if err != nil {
		return nil, err
	}
	rows := make([]Fig4Row, cfg.Rounds)
	for i := range rows {
		rows[i].Round = i + 1
	}

	// Robust traces.
	robust := func(crashProb float64, sink func(round int, err float64)) error {
		return runRobustTrace(graph, values, outlier, cfg, r.Split(), crashProb, sink)
	}
	if err := robust(0, func(round int, e float64) { rows[round].RobustNoCrash = e }); err != nil {
		return nil, fmt.Errorf("experiments: fig4 robust no-crash: %w", err)
	}
	if err := robust(cfg.CrashProb, func(round int, e float64) { rows[round].RobustCrash = e }); err != nil {
		return nil, fmt.Errorf("experiments: fig4 robust crash: %w", err)
	}

	// Regular traces.
	truth := vec.Of(0, 0)
	regular := func(crashProb float64, sink func(round int, err float64)) error {
		_, err := runPushSum(graph, values, cfg.Rounds, r.Split(), crashProb,
			func(round int, ests []vec.Vector) error {
				if len(ests) == 0 {
					return engine.ErrStop
				}
				e, err := stats.MeanError(ests, truth)
				if err != nil {
					return err
				}
				sink(round, e)
				return nil
			})
		return err
	}
	if err := regular(0, func(round int, e float64) { rows[round].RegularNoCrash = e }); err != nil {
		return nil, fmt.Errorf("experiments: fig4 regular no-crash: %w", err)
	}
	if err := regular(cfg.CrashProb, func(round int, e float64) { rows[round].RegularCrash = e }); err != nil {
		return nil, fmt.Errorf("experiments: fig4 regular crash: %w", err)
	}
	return rows, nil
}

func runRobustTrace(graph *topology.Graph, values []vec.Vector, outlier []bool, cfg Fig4Config, r *rng.RNG, crashProb float64, sink func(round int, err float64)) error {
	return runRobustTraceCount(graph, values, outlier, cfg, r, crashProb,
		func(round int, e float64, _ int) { sink(round, e) })
}

// Fig4Table renders the traces.
func Fig4Table(rows []Fig4Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprintf("%d", r.Round),
			F(r.RobustNoCrash), F(r.RegularNoCrash),
			F(r.RobustCrash), F(r.RegularCrash),
		}
	}
	return FormatTable(
		[]string{"round", "robust", "regular", "robust+crash", "regular+crash"},
		out,
	)
}

// CrashSweepRow reports one crash-probability setting.
type CrashSweepRow struct {
	// CrashProb is the per-round crash probability.
	CrashProb float64
	// RobustErr and RegularErr are the final-round mean-estimation
	// errors over surviving nodes.
	RobustErr, RegularErr float64
	// Survivors is the number of alive nodes at the end of the robust
	// run.
	Survivors int
}

// RunCrashSweep extends Figure 4's robustness axis: final estimation
// error as the per-round crash probability varies. The paper shows one
// point (p = 0.05); the sweep maps how far the robustness extends.
func RunCrashSweep(probs []float64, cfg Fig4Config) ([]CrashSweepRow, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values, outlier, err := Figure3Dataset(cfg.NGood, cfg.NOut, cfg.Delta, r)
	if err != nil {
		return nil, err
	}
	graph, err := topology.Full(len(values))
	if err != nil {
		return nil, err
	}
	truth := vec.Of(0, 0)
	rows := make([]CrashSweepRow, 0, len(probs))
	for _, p := range probs {
		row := CrashSweepRow{CrashProb: p}
		var lastRobust float64
		survivors := 0
		err := runRobustTraceCount(graph, values, outlier, cfg, r.Split(), p,
			func(round int, e float64, alive int) {
				lastRobust = e
				survivors = alive
			})
		if err != nil {
			return nil, fmt.Errorf("experiments: crash sweep p=%v: %w", p, err)
		}
		row.RobustErr = lastRobust
		row.Survivors = survivors
		regular, err := runPushSum(graph, values, cfg.Rounds, r.Split(), p, nil)
		if err != nil {
			return nil, err
		}
		if len(regular) > 0 {
			if row.RegularErr, err = stats.MeanError(regular, truth); err != nil {
				return nil, err
			}
		} else {
			row.RegularErr = math.NaN() // no survivors
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runRobustTraceCount is runRobustTrace with the surviving-node count
// passed to the sink. It runs the GM protocol on cfg.Backend through
// the engine; the per-round error probe reads classification snapshots,
// which is safe on every backend.
func runRobustTraceCount(graph *topology.Graph, values []vec.Vector, outlier []bool, cfg Fig4Config, r *rng.RNG, crashProb float64, sink func(round int, err float64, alive int)) error {
	killR := r.Split()
	vals := make([]core.Value, len(values))
	for i, v := range values {
		vals[i] = core.Value(v)
	}
	ecfg := engine.Config{
		Backend: cfg.Backend,
		Method:  gm.Method{},
		Values:  vals,
		Aux: func(i int) vec.Vector {
			aux := vec.New(2)
			if outlier[i] {
				aux[1] = 1
			} else {
				aux[0] = 1
			}
			return aux
		},
		Graph:   graph,
		RNG:     r,
		K:       cfg.K,
		Metrics: cfg.Metrics,
		Trace:   cfg.Trace,
	}
	caps := cfg.Backend.Caps()
	if caps.CrashProb {
		ecfg.CrashProb = crashProb
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return err
	}
	defer eng.Stop()
	truth := vec.Of(0, 0)
	probe := func(round int) error {
		var ests []vec.Vector
		for i := 0; i < eng.N(); i++ {
			if !eng.Alive(i) {
				continue
			}
			est, err := RobustEstimateOf(eng.Classification(i))
			if err != nil {
				return err
			}
			ests = append(ests, est)
		}
		if len(ests) == 0 {
			return engine.ErrStop
		}
		e, err := stats.MeanError(ests, truth)
		if err != nil {
			return err
		}
		if cfg.Metrics != nil {
			cfg.Metrics.Gauge("experiments.error").Set(e)
		}
		if cfg.Trace != nil {
			if err := cfg.Trace.Record(trace.Event{
				Round: round, Node: -1, Kind: trace.KindError, Value: e,
			}); err != nil {
				return err
			}
		}
		sink(round, e, len(ests))
		return nil
	}
	if caps.CrashProb {
		return eng.RunObserved(cfg.Rounds, probe)
	}
	// Concurrent backend: the engine cannot inject probabilistic
	// crashes, so the harness samples explicit fail-stop Kills between
	// wall-clock rounds of one gossip interval each.
	for round := 0; round < cfg.Rounds; round++ {
		if err := eng.Step(); err != nil {
			return err
		}
		for i := 0; i < eng.N(); i++ {
			if eng.Alive(i) && killR.Bool(crashProb) {
				if _, err := eng.Kill(i); err != nil {
					return err
				}
			}
		}
		if err := probe(round); err != nil {
			if errors.Is(err, engine.ErrStop) {
				return nil
			}
			return err
		}
	}
	return nil
}

// CrashSweepTable renders the sweep.
func CrashSweepTable(rows []CrashSweepRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			F(r.CrashProb), F(r.RobustErr), F(r.RegularErr),
			fmt.Sprintf("%d", r.Survivors),
		}
	}
	return FormatTable([]string{"crash prob", "robust err", "regular err", "survivors"}, out)
}
