package experiments

import (
	"fmt"
	"math"

	"distclass/internal/centroids"
	"distclass/internal/core"
	"distclass/internal/engine"
	"distclass/internal/gm"
	"distclass/internal/histogram"
	"distclass/internal/metrics"
	"distclass/internal/rng"
	"distclass/internal/stats"
	"distclass/internal/topology"
	"distclass/internal/trace"
	"distclass/internal/vec"
)

// AblationConfig parameterizes the ablation studies (DESIGN.md's
// experiments A-D): they all run GM or centroids classification over a
// bimodal 2-D dataset and measure rounds to convergence plus traffic.
type AblationConfig struct {
	// N is the network size (default 128).
	N int
	// K is the collection bound (default 2).
	K int
	// MaxRounds bounds each run (default 200).
	MaxRounds int
	// Tol is the convergence threshold on the sampled spread
	// (default 1e-3).
	Tol float64
	// Seed drives all randomness (default 1).
	Seed uint64
	// Metrics, when set, aggregates protocol and simulator counters
	// across every run sharing this config.
	Metrics *metrics.Registry
	// Trace, when set, receives protocol events plus a per-round
	// spread probe from every run sharing this config.
	Trace trace.Sink
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.N == 0 {
		c.N = 128
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 200
	}
	//lint:allow floatcmp zero value selects the default
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// bimodalDataset draws half the values near (-4, 0) and half near
// (4, 0), a cleanly separable classification task.
func bimodalDataset(n int, r *rng.RNG) []vec.Vector {
	values := make([]vec.Vector, n)
	for i := range values {
		center := -4.0
		if i%2 == 1 {
			center = 4
		}
		values[i] = vec.Of(center+r.Normal(0, 1), r.Normal(0, 1))
	}
	return values
}

// ConvergenceRun reports one ablation run.
type ConvergenceRun struct {
	// Label names the configuration (topology kind, k value, ...).
	Label string
	// Rounds is the first round at which the sampled spread stayed below
	// Tol (-1 if never within MaxRounds).
	Rounds int
	// FinalSpread is the spread when the run stopped.
	FinalSpread float64
	// Messages is the number of messages sent.
	Messages int
	// AvgPayload is the mean number of collections per message.
	AvgPayload float64
}

// runConvergence runs classification to convergence over the graph and
// reports rounds and traffic.
func runConvergence(label string, graph *topology.Graph, values []vec.Vector, method core.Method, cfg AblationConfig, q float64, policy engine.Policy, mode engine.Mode, r *rng.RNG) (ConvergenceRun, error) {
	n := graph.N()
	nodes := make([]*core.Node, n)
	agents := make([]engine.Agent[core.Classification], n)
	for i := range nodes {
		node, err := core.NewNode(i, values[i], nil, core.Config{
			Method: method, K: cfg.K, Q: q,
			Metrics: cfg.Metrics, Trace: cfg.Trace,
		})
		if err != nil {
			return ConvergenceRun{}, err
		}
		nodes[i] = node
		agents[i] = &ClassifierAgent{Node: node}
	}
	net, err := engine.NewRoundDriver(graph, agents, r, engine.Options[core.Classification]{
		Policy:   policy,
		Mode:     mode,
		SizeFunc: ClassificationSize,
		Metrics:  cfg.Metrics,
		Trace:    cfg.Trace,
	})
	if err != nil {
		return ConvergenceRun{}, err
	}
	run := ConvergenceRun{Label: label, Rounds: -1}
	stable := 0
	err = net.RunRounds(cfg.MaxRounds, func(round int) error {
		spread, err := Spread(nodes, method, 4)
		if err != nil {
			return err
		}
		run.FinalSpread = spread
		if cfg.Metrics != nil {
			cfg.Metrics.Gauge("experiments.spread").Set(spread)
		}
		if cfg.Trace != nil {
			if err := cfg.Trace.Record(trace.Event{
				Round: round, Node: -1, Kind: trace.KindSpread, Value: spread,
			}); err != nil {
				return err
			}
		}
		if spread < cfg.Tol {
			stable++
			if stable >= 3 {
				if run.Rounds < 0 {
					run.Rounds = round - 1 // first of the 3 stable rounds
				}
				return engine.ErrStop
			}
		} else {
			stable = 0
		}
		return nil
	})
	if err != nil {
		return ConvergenceRun{}, err
	}
	st := net.Stats()
	run.Messages = st.MessagesSent
	if st.MessagesSent > 0 {
		run.AvgPayload = float64(st.PayloadSize) / float64(st.MessagesSent)
	}
	return run, nil
}

// RunTopologyAblation measures rounds-to-convergence across topologies
// (experiment A). The convergence proof promises convergence on any
// connected topology; the sweep shows how the mixing time varies.
func RunTopologyAblation(kinds []topology.Kind, cfg AblationConfig) ([]ConvergenceRun, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values := bimodalDataset(cfg.N, r)
	runs := make([]ConvergenceRun, 0, len(kinds))
	for _, kind := range kinds {
		graph, err := topology.Build(kind, cfg.N, r.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: topology %s: %w", kind, err)
		}
		run, err := runConvergence(string(kind), graph, values, gm.Method{}, cfg, 0, engine.PushRandom, engine.ModePush, r.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: topology %s: %w", kind, err)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// RunKAblation measures classification quality on the Figure 2 dataset
// as k varies (experiment B).
func RunKAblation(ks []int, cfg AblationConfig) ([]ConvergenceRun, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values, err := Figure2Dataset(cfg.N, r)
	if err != nil {
		return nil, err
	}
	graph, err := topology.Full(cfg.N)
	if err != nil {
		return nil, err
	}
	runs := make([]ConvergenceRun, 0, len(ks))
	for _, k := range ks {
		kCfg := cfg
		kCfg.K = k
		run, err := runConvergence(fmt.Sprintf("k=%d", k), graph, values, gm.Method{}, kCfg, 0, engine.PushRandom, engine.ModePush, r.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: k=%d: %w", k, err)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// KQualityRow reports classification quality for one k.
type KQualityRow struct {
	K              int
	MeanCoverError float64
	Components     int
}

// RunKQuality runs the Figure 2 experiment at several k values and
// reports how well the estimated mixtures cover the true cluster means
// (experiment B's quality axis).
func RunKQuality(ks []int, n int, rounds int, seed uint64) ([]KQualityRow, error) {
	rows := make([]KQualityRow, 0, len(ks))
	for _, k := range ks {
		res, err := RunFigure2(Fig2Config{N: n, K: k, MaxRounds: rounds, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: k=%d: %w", k, err)
		}
		rows = append(rows, KQualityRow{
			K:              k,
			MeanCoverError: res.MeanCoverError,
			Components:     len(res.Estimated),
		})
	}
	return rows, nil
}

// QAblationRow reports one quantization setting.
type QAblationRow struct {
	Q           float64
	Rounds      int
	WeightDrift float64 // |total weight - n| after the run
}

// RunQAblation sweeps the weight quantum q (experiment C): convergence
// must hold for any valid q, and total weight must remain exactly n.
func RunQAblation(qs []float64, cfg AblationConfig) ([]QAblationRow, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values := bimodalDataset(cfg.N, r)
	graph, err := topology.Full(cfg.N)
	if err != nil {
		return nil, err
	}
	rows := make([]QAblationRow, 0, len(qs))
	for _, q := range qs {
		n := graph.N()
		nodes := make([]*core.Node, n)
		agents := make([]engine.Agent[core.Classification], n)
		for i := range nodes {
			node, err := core.NewNode(i, values[i], nil, core.Config{Method: gm.Method{}, K: cfg.K, Q: q})
			if err != nil {
				return nil, fmt.Errorf("experiments: q=%v: %w", q, err)
			}
			nodes[i] = node
			agents[i] = &ClassifierAgent{Node: node}
		}
		net, err := engine.NewRoundDriver(graph, agents, r.Split(), engine.Options[core.Classification]{})
		if err != nil {
			return nil, err
		}
		row := QAblationRow{Q: q, Rounds: -1}
		stable := 0
		err = net.RunRounds(cfg.MaxRounds, func(round int) error {
			spread, err := Spread(nodes, gm.Method{}, 4)
			if err != nil {
				return err
			}
			if spread < cfg.Tol {
				stable++
				if stable >= 3 {
					if row.Rounds < 0 {
						row.Rounds = round - 1
					}
					return engine.ErrStop
				}
			} else {
				stable = 0
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var total float64
		for _, node := range nodes {
			total += node.Weight()
		}
		row.WeightDrift = math.Abs(total - float64(n))
		rows = append(rows, row)
	}
	return rows, nil
}

// RunPolicyAblation compares gossip policies (experiment D).
func RunPolicyAblation(cfg AblationConfig) ([]ConvergenceRun, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values := bimodalDataset(cfg.N, r)
	graph, err := topology.Full(cfg.N)
	if err != nil {
		return nil, err
	}
	var runs []ConvergenceRun
	for _, policy := range []engine.Policy{engine.PushRandom, engine.RoundRobin} {
		run, err := runConvergence(policy.String(), graph, values, gm.Method{}, cfg, 0, policy, engine.ModePush, r.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: policy %s: %w", policy, err)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// RunModeAblation compares the three gossip communication patterns of
// §4.1 — push, pull and bilateral push-pull — on the same dataset and
// topology (experiment D's second axis). Push-pull moves twice the
// weight per round and typically converges in the fewest rounds.
func RunModeAblation(cfg AblationConfig) ([]ConvergenceRun, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values := bimodalDataset(cfg.N, r)
	graph, err := topology.Full(cfg.N)
	if err != nil {
		return nil, err
	}
	var runs []ConvergenceRun
	for _, mode := range []engine.Mode{engine.ModePush, engine.ModePull, engine.ModePushPull} {
		run, err := runConvergence(mode.String(), graph, values, gm.Method{}, cfg, 0, engine.PushRandom, mode, r.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: mode %s: %w", mode, err)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// MethodComparisonRow compares instantiations on the bimodal dataset.
type MethodComparisonRow struct {
	Method      string
	Rounds      int
	FinalSpread float64
}

// RunMethodComparison runs centroids vs GM on the same dataset and
// topology — the paper's two instantiations of the one generic
// algorithm.
func RunMethodComparison(cfg AblationConfig) ([]MethodComparisonRow, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values := bimodalDataset(cfg.N, r)
	graph, err := topology.Full(cfg.N)
	if err != nil {
		return nil, err
	}
	var rows []MethodComparisonRow
	for _, m := range []core.Method{centroids.Method{}, gm.Method{}} {
		run, err := runConvergence(m.Name(), graph, values, m, cfg, 0, engine.PushRandom, engine.ModePush, r.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: method %s: %w", m.Name(), err)
		}
		rows = append(rows, MethodComparisonRow{Method: run.Label, Rounds: run.Rounds, FinalSpread: run.FinalSpread})
	}
	return rows, nil
}

// HistogramComparisonResult contrasts the GM robust mean with a 1-D
// gossip histogram estimate on outlier-contaminated scalar data — the
// related-work comparison (histograms smear outliers into the estimate;
// classification removes them).
type HistogramComparisonResult struct {
	// TrueGoodMean is the mean of the good sub-population (0).
	TrueGoodMean float64
	// RobustErr is the average |robust estimate - 0| over nodes.
	RobustErr float64
	// HistogramErr is the average |histogram mean - 0| over nodes.
	HistogramErr float64
}

// RunHistogramComparison runs both estimators over 1-D data with
// outliers at +delta.
func RunHistogramComparison(n int, delta float64, rounds int, seed uint64) (*HistogramComparisonResult, error) {
	if n < 20 {
		return nil, fmt.Errorf("experiments: n = %d too small", n)
	}
	r := rng.New(seed)
	nOut := n / 20 // 5% outliers
	values := make([]vec.Vector, n)
	for i := range values {
		if i < n-nOut {
			values[i] = vec.Of(r.Normal(0, 1))
		} else {
			values[i] = vec.Of(delta + r.Normal(0, math.Sqrt(0.1)))
		}
	}
	graph, err := topology.Full(n)
	if err != nil {
		return nil, err
	}

	// Robust GM run (k = 2).
	method := gm.Method{}
	nodes := make([]*core.Node, n)
	agents := make([]engine.Agent[core.Classification], n)
	for i := range nodes {
		node, err := core.NewNode(i, values[i], nil, core.Config{Method: method, K: 2})
		if err != nil {
			return nil, err
		}
		nodes[i] = node
		agents[i] = &ClassifierAgent{Node: node}
	}
	net, err := engine.NewRoundDriver(graph, agents, r.Split(), engine.Options[core.Classification]{})
	if err != nil {
		return nil, err
	}
	if err := net.RunRounds(rounds, nil); err != nil {
		return nil, err
	}
	var robustErrs []float64
	for _, node := range nodes {
		est, err := RobustEstimate(node)
		if err != nil {
			return nil, err
		}
		robustErrs = append(robustErrs, math.Abs(est[0]))
	}

	// Histogram run over the same scalars.
	spec := histogram.Spec{Lo: -5, Hi: delta + 5, Bins: 40}
	hNodes := make([]*histogram.Node, n)
	hAgents := make([]engine.Agent[histogram.Message], n)
	for i := range hNodes {
		node, err := histogram.NewNode(i, values[i][0], spec)
		if err != nil {
			return nil, err
		}
		hNodes[i] = node
		hAgents[i] = &HistogramAgent{Node: node}
	}
	hNet, err := engine.NewRoundDriver(graph, hAgents, r.Split(), engine.Options[histogram.Message]{})
	if err != nil {
		return nil, err
	}
	if err := hNet.RunRounds(rounds, nil); err != nil {
		return nil, err
	}
	var histErrs []float64
	for _, node := range hNodes {
		mean, err := node.EstimatedMean()
		if err != nil {
			return nil, err
		}
		histErrs = append(histErrs, math.Abs(mean))
	}

	res := &HistogramComparisonResult{}
	var rr, hh stats.Running
	for _, e := range robustErrs {
		rr.Add(e)
	}
	for _, e := range histErrs {
		hh.Add(e)
	}
	res.RobustErr = rr.Mean()
	res.HistogramErr = hh.Mean()
	return res, nil
}

// ConvergenceTable renders ablation runs.
func ConvergenceTable(runs []ConvergenceRun) string {
	rows := make([][]string, len(runs))
	for i, r := range runs {
		rows[i] = []string{
			r.Label, fmt.Sprintf("%d", r.Rounds), F(r.FinalSpread),
			fmt.Sprintf("%d", r.Messages), F(r.AvgPayload),
		}
	}
	return FormatTable([]string{"config", "rounds", "spread", "messages", "avg payload"}, rows)
}

// ReducerRow compares mixture-reduction engines.
type ReducerRow struct {
	Reducer        string
	Rounds         int
	MeanCoverError float64
}

// RunReducerAblation compares the EM reduction (the paper's §5.2
// choice) with greedy Runnalls-cost merging (Salmond-style, the paper's
// [18]) on the Figure 2 workload: rounds to convergence and how well
// the final mixture covers the true cluster means.
func RunReducerAblation(cfg AblationConfig) ([]ReducerRow, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values, err := Figure2Dataset(cfg.N, r)
	if err != nil {
		return nil, err
	}
	graph, err := topology.Full(cfg.N)
	if err != nil {
		return nil, err
	}
	truth := Figure2TrueMixture()
	var rows []ReducerRow
	for _, reducer := range []gm.Reducer{gm.ReducerEM, gm.ReducerGreedy} {
		method := gm.Method{Reducer: reducer}
		kCfg := cfg
		kCfg.K = 7
		nodes, net, err := buildClassifierNetwork(graph, values, method, kCfg.K, 0, r.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: reducer %s: %w", reducer, err)
		}
		row := ReducerRow{Reducer: reducer.String(), Rounds: -1}
		stable := 0
		err = net.RunRounds(kCfg.MaxRounds, func(round int) error {
			spread, err := Spread(nodes, method, 4)
			if err != nil {
				return err
			}
			if spread < kCfg.Tol {
				stable++
				if stable >= 3 {
					if row.Rounds < 0 {
						row.Rounds = round - 1
					}
					return engine.ErrStop
				}
			} else {
				stable = 0
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: reducer %s: %w", reducer, err)
		}
		mix, err := gm.ToMixture(nodes[0].Classification())
		if err != nil {
			return nil, err
		}
		if row.MeanCoverError, err = MeanCoverError(truth, mix); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ReducerTable renders the comparison.
func ReducerTable(rows []ReducerRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Reducer, fmt.Sprintf("%d", r.Rounds), F(r.MeanCoverError)}
	}
	return FormatTable([]string{"reducer", "rounds", "mean cover error"}, out)
}

// ScalabilityRow reports one network size.
type ScalabilityRow struct {
	N        int
	Rounds   int
	Messages int
	// AvgPayload is collections per message — the paper's claim is that
	// it depends only on k and d, never on n.
	AvgPayload float64
}

// RunScalabilityAblation measures rounds-to-convergence and message
// payload as the network grows. On a full mesh the rounds grow slowly
// (gossip mixing is logarithmic-ish in n) while the payload stays
// constant — the paper's §2 message-size argument made measurable.
func RunScalabilityAblation(sizes []int, cfg AblationConfig) ([]ScalabilityRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]ScalabilityRow, 0, len(sizes))
	for _, n := range sizes {
		r := rng.New(cfg.Seed + uint64(n))
		values := bimodalDataset(n, r)
		graph, err := topology.Full(n)
		if err != nil {
			return nil, err
		}
		nCfg := cfg
		nCfg.N = n
		run, err := runConvergence(fmt.Sprintf("n=%d", n), graph, values, gm.Method{}, nCfg, 0, engine.PushRandom, engine.ModePush, r.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: n=%d: %w", n, err)
		}
		rows = append(rows, ScalabilityRow{
			N: n, Rounds: run.Rounds, Messages: run.Messages, AvgPayload: run.AvgPayload,
		})
	}
	return rows, nil
}

// ScalabilityTable renders the sweep.
func ScalabilityTable(rows []ScalabilityRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprintf("%d", r.N), fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%d", r.Messages), F(r.AvgPayload),
		}
	}
	return FormatTable([]string{"n", "rounds", "messages", "colls/msg"}, out)
}

// LossRow reports one message-loss setting.
type LossRow struct {
	DropProb    float64
	RobustErr   float64
	WeightLost  float64 // fraction of total weight destroyed by drops
	FinalSpread float64
}

// RunLossAblation deliberately violates the paper's reliable-channel
// assumption (§3.1): messages are dropped with probability p. Lost
// messages destroy weight, so the surviving estimates degrade
// gracefully rather than the algorithm failing outright; the sweep
// measures how much.
func RunLossAblation(probs []float64, cfg AblationConfig) ([]LossRow, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values := bimodalDataset(cfg.N, r)
	graph, err := topology.Full(cfg.N)
	if err != nil {
		return nil, err
	}
	truthLow, truthHigh := vec.Of(-4, 0), vec.Of(4, 0)
	rows := make([]LossRow, 0, len(probs))
	for _, p := range probs {
		method := gm.Method{}
		nodes := make([]*core.Node, cfg.N)
		agents := make([]engine.Agent[core.Classification], cfg.N)
		for i := range nodes {
			node, err := core.NewNode(i, values[i], nil, core.Config{Method: method, K: cfg.K})
			if err != nil {
				return nil, err
			}
			nodes[i] = node
			agents[i] = &ClassifierAgent{Node: node}
		}
		net, err := engine.NewRoundDriver(graph, agents, r.Split(), engine.Options[core.Classification]{DropProb: p})
		if err != nil {
			return nil, err
		}
		if err := net.RunRounds(cfg.MaxRounds/2, nil); err != nil {
			return nil, err
		}
		row := LossRow{DropProb: p}
		var total float64
		var errSum float64
		count := 0
		for _, node := range nodes {
			total += node.Weight()
			for _, c := range node.Classification() {
				mean := c.Summary.(gm.Summary).G.Mean
				truth := truthLow
				if mean[0] > 0 {
					truth = truthHigh
				}
				d, err := vec.Dist(mean, truth)
				if err != nil {
					return nil, err
				}
				errSum += d
				count++
			}
		}
		if count > 0 {
			row.RobustErr = errSum / float64(count)
		}
		row.WeightLost = 1 - total/float64(cfg.N)
		if row.FinalSpread, err = Spread(nodes, method, 4); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LossTable renders the sweep.
func LossTable(rows []LossRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{F(r.DropProb), F(r.RobustErr), F(100 * r.WeightLost), F(r.FinalSpread)}
	}
	return FormatTable([]string{"drop prob", "cluster-mean err", "weight lost %", "spread"}, out)
}

// DimensionRow reports one data dimensionality.
type DimensionRow struct {
	D           int
	Rounds      int
	ClusterErr  float64 // avg distance from collection means to the true cluster centers
	FinalSpread float64
}

// RunDimensionAblation classifies two clusters embedded in R^d for a
// range of d, exercising the full numeric stack (Cholesky, densities,
// moment merges) beyond the paper's 2-D evaluation. The clusters sit at
// +-4 along the first axis with unit isotropic noise.
func RunDimensionAblation(dims []int, cfg AblationConfig) ([]DimensionRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]DimensionRow, 0, len(dims))
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("experiments: dimension %d must be positive", d)
		}
		r := rng.New(cfg.Seed + uint64(d))
		values := make([]vec.Vector, cfg.N)
		for i := range values {
			v := vec.New(d)
			for a := range v {
				v[a] = r.Normal(0, 1)
			}
			if i%2 == 1 {
				v[0] += 4
			} else {
				v[0] -= 4
			}
			values[i] = v
		}
		graph, err := topology.Full(cfg.N)
		if err != nil {
			return nil, err
		}
		method := gm.Method{}
		nodes, net, err := buildClassifierNetwork(graph, values, method, cfg.K, 0, r.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: d=%d: %w", d, err)
		}
		row := DimensionRow{D: d, Rounds: -1}
		stable := 0
		err = net.RunRounds(cfg.MaxRounds, func(round int) error {
			spread, err := Spread(nodes, method, 4)
			if err != nil {
				return err
			}
			row.FinalSpread = spread
			if spread < cfg.Tol {
				stable++
				if stable >= 3 {
					if row.Rounds < 0 {
						row.Rounds = round - 1
					}
					return engine.ErrStop
				}
			} else {
				stable = 0
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Quality: distance from each of node 0's collection means to the
		// nearest true center.
		lo, hi := vec.New(d), vec.New(d)
		lo[0], hi[0] = -4, 4
		var errSum float64
		cls := nodes[0].Classification()
		for _, c := range cls {
			mean := c.Summary.(gm.Summary).G.Mean
			dLo, err := vec.Dist(mean, lo)
			if err != nil {
				return nil, err
			}
			dHi, err := vec.Dist(mean, hi)
			if err != nil {
				return nil, err
			}
			errSum += math.Min(dLo, dHi)
		}
		if len(cls) > 0 {
			row.ClusterErr = errSum / float64(len(cls))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DimensionTable renders the sweep.
func DimensionTable(rows []DimensionRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprintf("%d", r.D), fmt.Sprintf("%d", r.Rounds),
			F(r.ClusterErr), F(r.FinalSpread),
		}
	}
	return FormatTable([]string{"d", "rounds", "cluster err", "spread"}, out)
}
