package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "x,y"}})
	if err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d", len(records))
	}
	if records[2][1] != "x,y" {
		t.Errorf("quoting broken: %q", records[2][1])
	}
}

func TestFig3CSV(t *testing.T) {
	rows := []Fig3Row{
		{Delta: 1, MissPct: 50, RobustErr: 0.1, RegularErr: 0.2},
		{Delta: 2.5, MissPct: 0, RobustErr: 0.05, RegularErr: 0.4},
	}
	var b strings.Builder
	if err := Fig3CSV(&b, rows); err != nil {
		t.Fatalf("Fig3CSV: %v", err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(records) != 3 || records[0][0] != "delta" {
		t.Fatalf("records = %v", records)
	}
	if records[2][0] != "2.5" || records[2][3] != "0.4" {
		t.Errorf("row = %v", records[2])
	}
}

func TestFig4CSV(t *testing.T) {
	rows := []Fig4Row{{Round: 1, RobustNoCrash: 0.5, RegularNoCrash: 0.6, RobustCrash: 0.7, RegularCrash: 0.8}}
	var b strings.Builder
	if err := Fig4CSV(&b, rows); err != nil {
		t.Fatalf("Fig4CSV: %v", err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(records) != 2 || records[1][0] != "1" || records[1][4] != "0.8" {
		t.Errorf("records = %v", records)
	}
}

func TestFig2CSV(t *testing.T) {
	res, err := RunFigure2(Fig2Config{N: 60, K: 4, MaxRounds: 15, Seed: 2})
	if err != nil {
		t.Fatalf("RunFigure2: %v", err)
	}
	var b strings.Builder
	if err := Fig2CSV(&b, res); err != nil {
		t.Fatalf("Fig2CSV: %v", err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	// Header + 3 true + >=1 estimated.
	if len(records) < 5 {
		t.Fatalf("records = %d", len(records))
	}
	if records[1][0] != "true" {
		t.Errorf("first data row kind = %q", records[1][0])
	}
	sawEst := false
	for _, rec := range records[1:] {
		if rec[0] == "estimated" {
			sawEst = true
		}
	}
	if !sawEst {
		t.Errorf("no estimated rows in %v", records)
	}
}
