package experiments

import (
	"distclass/internal/core"
)

// Spread measures how far apart node classifications currently are: the
// maximum pairwise core.Dissimilarity over a deterministic sample of
// node pairs (all pairs when n is small, a spaced subset otherwise).
// Converging networks drive it to zero.
func Spread(nodes []*core.Node, m core.Method, maxNodes int) (float64, error) {
	if maxNodes < 2 {
		maxNodes = 2
	}
	idx := sampleIndices(len(nodes), maxNodes)
	var worst float64
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			d, err := nodes[idx[i]].DissimilarityTo(nodes[idx[j]])
			if err != nil {
				return 0, err
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// sampleIndices returns up to max evenly spaced indices over [0, n).
func sampleIndices(n, max int) []int {
	if n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, max)
	for i := range out {
		out[i] = i * n / max
	}
	return out
}
