package experiments

import (
	"fmt"
	"math"

	"distclass/internal/gauss"
	"distclass/internal/mat"
	"distclass/internal/rng"
	"distclass/internal/vec"
)

// FMin is the paper's outlier threshold for Figure 3: values whose
// probability density under the standard normal is below this are
// ground-truth outliers.
const FMin = 5e-5

// Figure2TrueMixture returns the 3-Gaussian generating distribution of
// the Figure 2 experiment. The paper does not print its exact
// parameters; this mixture matches the figure's shape: sensors along a
// fence (x = position, y = temperature), with the right side close to a
// fire outbreak — one hot, elongated component and two cooler background
// components.
func Figure2TrueMixture() gauss.Mixture {
	mk := func(w, mx, my, sxx, sxy, syy float64) gauss.Component {
		cov, err := mat.FromRows([][]float64{{sxx, sxy}, {sxy, syy}})
		if err != nil {
			panic(fmt.Sprintf("experiments: bad literal covariance: %v", err))
		}
		g, err := gauss.New(vec.Of(mx, my), cov)
		if err != nil {
			panic(fmt.Sprintf("experiments: bad literal component: %v", err))
		}
		return gauss.Component{Gaussian: g, Weight: w}
	}
	return gauss.Mixture{
		// Background sensors along the left of the fence.
		mk(0.40, -6, 0, 1.2, 0.2, 0.5),
		// Background sensors mid-fence, slightly warmer.
		mk(0.35, 0, 3, 1.0, -0.3, 0.7),
		// Sensors near the fire: hot, strongly elongated in temperature.
		mk(0.25, 6, 9, 0.8, 0.6, 2.5),
	}
}

// Figure2Dataset samples n values from the Figure 2 mixture.
func Figure2Dataset(n int, r *rng.RNG) ([]vec.Vector, error) {
	return Figure2TrueMixture().Sample(r, n, 0)
}

// Figure3Dataset builds the Figure 3 input: nGood values from the
// standard bivariate normal and nOut values from N((0, delta), 0.1*I).
// It returns the values and their ground-truth outlier flags — per the
// paper, a value is an outlier when its density under the standard
// normal is below FMin (so extreme draws from the good distribution
// count as outliers, and near-mean draws from the bad one do not).
func Figure3Dataset(nGood, nOut int, delta float64, r *rng.RNG) ([]vec.Vector, []bool, error) {
	if nGood < 0 || nOut < 0 || nGood+nOut == 0 {
		return nil, nil, fmt.Errorf("experiments: bad sizes nGood=%d nOut=%d", nGood, nOut)
	}
	values := make([]vec.Vector, 0, nGood+nOut)
	good, err := rng.NewMVN(vec.Of(0, 0), mat.Identity(2))
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < nGood; i++ {
		values = append(values, good.Sample(r))
	}
	if nOut > 0 {
		bad, err := rng.NewMVN(vec.Of(0, delta), mat.Diagonal(0.1, 0.1))
		if err != nil {
			return nil, nil, err
		}
		for i := 0; i < nOut; i++ {
			values = append(values, bad.Sample(r))
		}
	}
	outlier := make([]bool, len(values))
	for i, v := range values {
		outlier[i] = StandardNormalDensity2D(v) < FMin
	}
	return values, outlier, nil
}

// StandardNormalDensity2D returns the density of the standard bivariate
// normal at v.
func StandardNormalDensity2D(v vec.Vector) float64 {
	if v.Dim() != 2 {
		return 0
	}
	return math.Exp(-0.5*(v[0]*v[0]+v[1]*v[1])) / (2 * math.Pi)
}
