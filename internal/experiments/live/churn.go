// Package live runs the churn ablation — the paper's Figure 4 crash
// model (fail-stop nodes whose weight is destroyed, §3.1) reproduced
// by killing nodes mid-run and measuring what the survivors still
// agree on — against any engine backend. On the deterministic
// simulator backends (round, async) the kills land between rounds and
// the weight audit is exact; on the concurrent backends (chan, pipe,
// tcp) real goroutines die mid-gossip and the audit allows the handful
// of frames a dying connection can tear. One harness, one readout,
// five substrates: the point of the engine layer.
//
// The package deliberately lives outside the deterministic core: it
// needs wall-clock pacing and deadlines (time.Sleep, time.Now) that
// the nowallclock lint rule bans from the protocol and sim packages.
package live

import (
	"errors"
	"fmt"
	"math"
	"time"

	"distclass/internal/core"
	"distclass/internal/engine"
	"distclass/internal/experiments"
	"distclass/internal/gm"
	"distclass/internal/metrics"
	"distclass/internal/rng"
	"distclass/internal/topology"
	"distclass/internal/trace"
	"distclass/internal/vec"
	"distclass/internal/wire"
)

// ChurnConfig parameterizes the churn ablation.
type ChurnConfig struct {
	// Backend selects the substrate (zero value engine.BackendRound;
	// the experiments command defaults its churn runs to BackendPipe,
	// the historical live deployment).
	Backend engine.Backend
	// N is the cluster size (default 50).
	N int
	// KillFracs are the node fractions to kill, one cluster per entry
	// (default 0, 0.1, 0.2, 0.3 — the Figure 4 regime).
	KillFracs []float64
	// K bounds collections per classification (default 2).
	K int
	// Interval is the per-node gossip tick on concurrent backends
	// (default 1ms).
	Interval time.Duration
	// Seed drives the dataset, victim choice and neighbor selection
	// (default 1). Only the simulator backends are bit-reproducible.
	Seed uint64
	// Tol is the spread below which a cluster counts as converged
	// (default 0.05 — intentionally far above the replay analyzer's
	// 1e-3 convergence threshold, so churn traces never trip its
	// post-convergence divergence anomaly).
	Tol float64
	// MaxWait bounds each phase on concurrent backends: warmup,
	// post-kill convergence (default 30s). Rounds backends use round
	// budgets instead (warmupRounds, convergeRounds).
	MaxWait time.Duration
	// Strict makes degradation fatal: a run that does not converge,
	// fails internally, or breaks the weight-conservation band returns
	// an error instead of a row. Kill-free rows must conserve weight
	// exactly on every backend. The churn-smoke CI gate runs strict.
	Strict bool
	// Codec selects the wire encoding and FrameBatch the per-flush
	// coalescing bound on the wire backends (pipe, tcp). Zero values
	// mean v1 frames, one message per frame; the engine rejects
	// non-default values on backends without a wire format.
	Codec      wire.Codec
	FrameBatch int
	// Metrics and Trace are handed to every cluster; spread and error
	// probes are recorded to Trace with Round and Node -1 (churn probes
	// are not tied to driver rounds).
	Metrics *metrics.Registry
	Trace   trace.Sink
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.N == 0 {
		c.N = 50
	}
	if c.KillFracs == nil {
		c.KillFracs = []float64{0, 0.1, 0.2, 0.3}
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tol <= 0 {
		c.Tol = 0.05
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	return c
}

// Round budgets for the rounds backends, replacing MaxWait.
const (
	// warmupRounds bounds the pre-kill gossip phase (the 5N-message
	// threshold is normally hit within ~6 rounds).
	warmupRounds = 50
	// convergeRounds bounds the survivors' re-convergence phase.
	convergeRounds = 500
)

// ChurnRow is one kill fraction's outcome.
type ChurnRow struct {
	// KillFrac is the requested kill fraction; Killed the node count it
	// rounded to; Survivors what remained alive.
	KillFrac  float64
	Killed    int
	Survivors int
	// WeightDestroyed is the exact weight the kills removed (summed
	// from Engine.Kill); WeightAtNodes the weight found at surviving
	// nodes after Stop — conservation means the two sum back to ~N
	// (exactly N when nothing was killed).
	WeightDestroyed float64
	WeightAtNodes   float64
	// FinalSpread is the last sampled dissimilarity spread and
	// Converged whether it passed Tol within the budget.
	FinalSpread float64
	Converged   bool
	// FinalError is the survivors' mean robust-estimate error against
	// the ground truth mean (0,0) of the Figure 3 population.
	FinalError float64
	// Drops counts refused or destroyed sends during the run: full-
	// queue backpressure on concurrent backends (not loss), messages
	// destroyed at dead destinations on the simulator backends.
	Drops int64
}

// RunLiveChurn runs one cluster per kill fraction on the configured
// backend: gossip, kill, wait for the survivors to re-converge, stop,
// audit. It is the backend-generic face of the sim-side crash sweep
// (experiments.RunCrashSweep).
func RunLiveChurn(cfg ChurnConfig) ([]ChurnRow, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	rows := make([]ChurnRow, 0, len(cfg.KillFracs))
	for _, frac := range cfg.KillFracs {
		if frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("live: kill fraction %v outside [0, 1)", frac)
		}
		row, err := runChurnOnce(frac, cfg, r.Split())
		if err != nil {
			return nil, fmt.Errorf("live: backend %s, kill fraction %v: %w", cfg.Backend, frac, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runChurnOnce(frac float64, cfg ChurnConfig, r *rng.RNG) (ChurnRow, error) {
	n := cfg.N
	values, _, err := experiments.Figure3Dataset(n-n/20, n/20, 10, r)
	if err != nil {
		return ChurnRow{}, err
	}
	g, err := topology.Full(n)
	if err != nil {
		return ChurnRow{}, err
	}
	eng, err := engine.New(engine.Config{
		Backend:    cfg.Backend,
		Method:     gm.Method{},
		Values:     values,
		Graph:      g,
		K:          cfg.K,
		Q:          core.DefaultQ,
		Seed:       cfg.Seed + 1,
		Tolerance:  cfg.Tol,
		Interval:   cfg.Interval,
		Codec:      cfg.Codec,
		FrameBatch: cfg.FrameBatch,
		Metrics:    cfg.Metrics,
		Trace:      cfg.Trace,
	})
	if err != nil {
		return ChurnRow{}, err
	}
	defer eng.Stop()
	rounds := cfg.Backend.Caps().Rounds

	// Warmup: let gossip flow before the crashes so the kills land
	// mid-run, with weight genuinely distributed.
	if err := warmup(eng, rounds, cfg); err != nil {
		return ChurnRow{}, err
	}

	row := ChurnRow{KillFrac: frac, Killed: int(frac * float64(n))}
	victims := r.Perm(n)[:row.Killed]
	for _, v := range victims {
		w, err := eng.Kill(v)
		if err != nil {
			return ChurnRow{}, err
		}
		row.WeightDestroyed += w
	}
	row.Survivors = eng.AliveCount()

	// Let the survivors re-converge, probing spread as the sim
	// experiments do per round (recorded with Round -1: churn probes
	// are not tied to driver rounds).
	if err := converge(eng, rounds, cfg, &row); err != nil {
		return ChurnRow{}, err
	}

	eng.Stop()
	if err := eng.Err(); err != nil {
		return ChurnRow{}, err
	}
	row.WeightAtNodes = eng.TotalWeight()
	row.Drops = int64(eng.Stats().MessagesDropped)

	// Survivors' mean robust-estimate error against the ground truth
	// mean (0, 0) of the Figure 3 population.
	truth := vec.Of(0, 0)
	var errSum float64
	var alive int
	for i := 0; i < eng.N(); i++ {
		if !eng.Alive(i) {
			continue
		}
		est, err := experiments.RobustEstimateOf(eng.Classification(i))
		if err != nil {
			return ChurnRow{}, fmt.Errorf("node %d: %w", i, err)
		}
		d, err := vec.Dist(est, truth)
		if err != nil {
			return ChurnRow{}, err
		}
		errSum += d
		alive++
	}
	if alive == 0 {
		return ChurnRow{}, errors.New("no survivors to estimate from")
	}
	row.FinalError = errSum / float64(alive)
	if cfg.Trace != nil {
		if err := cfg.Trace.Record(trace.Event{
			Round: -1, Node: -1, Kind: trace.KindError, Value: row.FinalError,
		}); err != nil {
			return ChurnRow{}, err
		}
	}

	if cfg.Strict {
		if err := auditStrict(row, n); err != nil {
			return ChurnRow{}, err
		}
	}
	return row, nil
}

// warmup runs the pre-kill phase until 5N messages have flowed: rounds
// on the simulator backends, wall time on the concurrent ones.
func warmup(eng engine.Engine, rounds bool, cfg ChurnConfig) error {
	want := 5 * eng.N()
	if rounds {
		for i := 0; i < warmupRounds; i++ {
			if eng.Stats().MessagesSent >= want {
				return nil
			}
			if err := eng.Step(); err != nil {
				return err
			}
		}
		if eng.Stats().MessagesSent >= want {
			return nil
		}
		return fmt.Errorf("warmup: only %d messages flowed within %d rounds",
			eng.Stats().MessagesSent, warmupRounds)
	}
	deadline := time.Now().Add(cfg.MaxWait)
	for eng.Stats().MessagesSent < want {
		if err := eng.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("warmup: only %d messages flowed within %v",
				eng.Stats().MessagesSent, cfg.MaxWait)
		}
		time.Sleep(cfg.Interval)
	}
	return nil
}

// converge runs the post-kill phase until the survivors' spread drops
// under Tol or the budget runs out, recording each probe.
func converge(eng engine.Engine, rounds bool, cfg ChurnConfig, row *ChurnRow) error {
	probe := func() (bool, error) {
		spread, err := eng.Spread()
		if err != nil {
			return false, err
		}
		row.FinalSpread = spread
		if cfg.Trace != nil {
			if err := cfg.Trace.Record(trace.Event{
				Round: -1, Node: -1, Kind: trace.KindSpread, Value: spread,
			}); err != nil {
				return false, err
			}
		}
		if spread < cfg.Tol {
			row.Converged = true
			return true, nil
		}
		return false, nil
	}
	if rounds {
		for i := 0; i < convergeRounds; i++ {
			done, err := probe()
			if err != nil || done {
				return err
			}
			if err := eng.Step(); err != nil {
				return err
			}
		}
		_, err := probe()
		return err
	}
	deadline := time.Now().Add(cfg.MaxWait)
	for {
		done, err := probe()
		if err != nil || done {
			return err
		}
		if err := eng.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(5 * cfg.Interval)
	}
}

// auditStrict applies the CI gate's pass/fail rules to one row.
func auditStrict(row ChurnRow, n int) error {
	if !row.Converged {
		return fmt.Errorf("survivors did not converge (final spread %v)", row.FinalSpread)
	}
	if row.Killed == 0 {
		// With no kills nothing may destroy weight: every backend must
		// reproduce N to float addition noise. (All weights are
		// multiples of the quantum q, so the sums are in fact exact;
		// on concurrent backends Stop has already drained or accounted
		// every queue.)
		if drift := math.Abs(row.WeightDestroyed + row.WeightAtNodes - float64(n)); drift > 1e-6 {
			return fmt.Errorf("conservation not exact: %v destroyed + %v at nodes vs %d started (drift %v)",
				row.WeightDestroyed, row.WeightAtNodes, n, drift)
		}
		return nil
	}
	// With kills, conservation has two sides. Upper: nothing duplicates
	// weight, so destroyed plus surviving weight can never exceed the N
	// the system started with (victims may die holding more or less
	// than 1, so the surviving weight alone is not bounded by the
	// survivor count). Lower: beyond the tracked kills, weight vanishes
	// only with messages addressed to already-dead nodes (the simulator
	// drivers' MessagesDropped) or frames torn mid-write by a dying
	// conn — bounded leaks, never more than the traffic the dead
	// attracted.
	survivors := float64(row.Survivors)
	if row.WeightDestroyed+row.WeightAtNodes > float64(n)+1e-6 {
		return fmt.Errorf("weight inflated: %v destroyed + %v at nodes > %d started",
			row.WeightDestroyed, row.WeightAtNodes, n)
	}
	if row.WeightAtNodes < survivors/2 {
		return fmt.Errorf("weight conservation broke: %v at nodes, %v survivors (destroyed %v of %d)",
			row.WeightAtNodes, survivors, row.WeightDestroyed, n)
	}
	return nil
}

// ChurnTable renders the rows as the Figure-4-style weight-destroyed
// vs. error table.
func ChurnTable(rows []ChurnRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		converged := "no"
		if r.Converged {
			converged = "yes"
		}
		out[i] = []string{
			experiments.F(r.KillFrac),
			fmt.Sprintf("%d", r.Killed),
			fmt.Sprintf("%d", r.Survivors),
			experiments.F(r.WeightDestroyed),
			experiments.F(r.WeightAtNodes),
			experiments.F(r.FinalSpread),
			converged,
			experiments.F(r.FinalError),
			fmt.Sprintf("%d", r.Drops),
		}
	}
	return experiments.FormatTable([]string{
		"kill frac", "killed", "survivors", "weight destroyed",
		"weight at nodes", "final spread", "converged", "mean error", "send drops",
	}, out)
}
