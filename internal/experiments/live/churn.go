// Package live runs experiments against the livenet deployment — real
// goroutines, real connections, real time — rather than the
// deterministic sim drivers. Its headline study is the live churn
// ablation: the paper's Figure 4 crash model (fail-stop nodes whose
// weight is destroyed, §3.1) reproduced by actually killing cluster
// nodes mid-run and measuring what the survivors still agree on.
//
// The package deliberately lives outside the deterministic core: it
// needs wall-clock pacing and deadlines (time.Sleep, time.Now) that
// the nowallclock lint rule bans from the protocol and sim packages.
package live

import (
	"errors"
	"fmt"
	"time"

	"distclass/internal/core"
	"distclass/internal/experiments"
	"distclass/internal/gm"
	"distclass/internal/livenet"
	"distclass/internal/metrics"
	"distclass/internal/rng"
	"distclass/internal/topology"
	"distclass/internal/trace"
	"distclass/internal/vec"
)

// ChurnConfig parameterizes the live churn ablation.
type ChurnConfig struct {
	// N is the cluster size (default 50).
	N int
	// KillFracs are the node fractions to kill, one live cluster per
	// entry (default 0, 0.1, 0.2, 0.3 — the Figure 4 regime).
	KillFracs []float64
	// K bounds collections per classification (default 2).
	K int
	// Interval is the per-node gossip tick (default 1ms).
	Interval time.Duration
	// Seed drives the dataset, victim choice and neighbor selection
	// (default 1). Live runs are not bit-reproducible regardless.
	Seed uint64
	// Tol is the spread below which a cluster counts as converged
	// (default 0.05 — intentionally far above the replay analyzer's
	// 1e-3 convergence threshold, so churn traces never trip its
	// post-convergence divergence anomaly).
	Tol float64
	// MaxWait bounds each phase: warmup, post-kill convergence
	// (default 30s).
	MaxWait time.Duration
	// Strict makes degradation fatal: a run that does not converge,
	// fails internally, or breaks the weight-conservation band returns
	// an error instead of a row. The churn-smoke CI gate runs strict.
	Strict bool
	// Transport selects the livenet transport (default pipes).
	Transport livenet.Transport
	// Metrics and Trace are handed to every cluster; spread and error
	// probes are recorded to Trace with Round and Node -1 (live events
	// are not tied to rounds).
	Metrics *metrics.Registry
	Trace   trace.Sink
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.N == 0 {
		c.N = 50
	}
	if c.KillFracs == nil {
		c.KillFracs = []float64{0, 0.1, 0.2, 0.3}
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tol <= 0 {
		c.Tol = 0.05
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	return c
}

// ChurnRow is one kill fraction's outcome.
type ChurnRow struct {
	// KillFrac is the requested kill fraction; Killed the node count it
	// rounded to; Survivors what remained alive.
	KillFrac  float64
	Killed    int
	Survivors int
	// WeightDestroyed is the exact weight the kills removed (summed
	// from Cluster.Kill); WeightAtNodes the weight found at surviving
	// nodes after Stop — conservation means the two sum back to ~N.
	WeightDestroyed float64
	WeightAtNodes   float64
	// FinalSpread is the last sampled dissimilarity spread and
	// Converged whether it passed Tol before MaxWait.
	FinalSpread float64
	Converged   bool
	// FinalError is the survivors' mean robust-estimate error against
	// the ground truth mean (0,0) of the Figure 3 population.
	FinalError float64
	// Drops counts sends dropped at full queues during the run —
	// backpressure, not loss.
	Drops int64
}

// RunLiveChurn runs one live cluster per kill fraction: gossip, kill,
// wait for the survivors to re-converge, stop, audit. It mirrors the
// sim-side crash sweep (experiments.RunCrashSweep) against the real
// deployment.
func RunLiveChurn(cfg ChurnConfig) ([]ChurnRow, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	rows := make([]ChurnRow, 0, len(cfg.KillFracs))
	for _, frac := range cfg.KillFracs {
		if frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("live: kill fraction %v outside [0, 1)", frac)
		}
		row, err := runChurnOnce(frac, cfg, r.Split())
		if err != nil {
			return nil, fmt.Errorf("live: kill fraction %v: %w", frac, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runChurnOnce(frac float64, cfg ChurnConfig, r *rng.RNG) (ChurnRow, error) {
	n := cfg.N
	values, _, err := experiments.Figure3Dataset(n-n/20, n/20, 10, r)
	if err != nil {
		return ChurnRow{}, err
	}
	g, err := topology.Full(n)
	if err != nil {
		return ChurnRow{}, err
	}
	cluster, err := livenet.Start(g, values, livenet.Config{
		Method:    gm.Method{},
		K:         cfg.K,
		Q:         core.DefaultQ,
		Interval:  cfg.Interval,
		Seed:      cfg.Seed + 1,
		Transport: cfg.Transport,
		Metrics:   cfg.Metrics,
		Trace:     cfg.Trace,
	})
	if err != nil {
		return ChurnRow{}, err
	}
	defer cluster.Stop()

	// Warmup: let real gossip flow before the crashes so the kills land
	// mid-run, with weight genuinely distributed.
	warmDeadline := time.Now().Add(cfg.MaxWait)
	for cluster.MessagesSent() < int64(5*n) {
		if err := cluster.Err(); err != nil {
			return ChurnRow{}, err
		}
		if time.Now().After(warmDeadline) {
			return ChurnRow{}, fmt.Errorf("warmup: only %d messages flowed within %v",
				cluster.MessagesSent(), cfg.MaxWait)
		}
		time.Sleep(cfg.Interval)
	}

	row := ChurnRow{KillFrac: frac, Killed: int(frac * float64(n))}
	victims := r.Perm(n)[:row.Killed]
	for _, v := range victims {
		w, err := cluster.Kill(v)
		if err != nil {
			return ChurnRow{}, err
		}
		row.WeightDestroyed += w
	}
	row.Survivors = cluster.AliveCount()

	// Poll the survivors' spread until they re-converge, mirroring the
	// per-round probes of the sim experiments (Round -1: live).
	deadline := time.Now().Add(cfg.MaxWait)
	for {
		spread, err := cluster.Spread()
		if err != nil {
			return ChurnRow{}, err
		}
		row.FinalSpread = spread
		if cfg.Trace != nil {
			if err := cfg.Trace.Record(trace.Event{
				Round: -1, Node: -1, Kind: trace.KindSpread, Value: spread,
			}); err != nil {
				return ChurnRow{}, err
			}
		}
		if spread < cfg.Tol {
			row.Converged = true
			break
		}
		if err := cluster.Err(); err != nil {
			return ChurnRow{}, err
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * cfg.Interval)
	}

	cluster.Stop()
	if err := cluster.Err(); err != nil {
		return ChurnRow{}, err
	}
	row.WeightAtNodes = cluster.TotalWeight()
	row.Drops = cluster.SendDrops()

	// Survivors' mean robust-estimate error against the ground truth
	// mean (0, 0) of the Figure 3 population.
	truth := vec.Of(0, 0)
	var errSum float64
	var alive int
	for i := 0; i < cluster.N(); i++ {
		if !cluster.Alive(i) {
			continue
		}
		est, err := experiments.RobustEstimateOf(cluster.Classification(i))
		if err != nil {
			return ChurnRow{}, fmt.Errorf("node %d: %w", i, err)
		}
		d, err := vec.Dist(est, truth)
		if err != nil {
			return ChurnRow{}, err
		}
		errSum += d
		alive++
	}
	if alive == 0 {
		return ChurnRow{}, errors.New("no survivors to estimate from")
	}
	row.FinalError = errSum / float64(alive)
	if cfg.Trace != nil {
		if err := cfg.Trace.Record(trace.Event{
			Round: -1, Node: -1, Kind: trace.KindError, Value: row.FinalError,
		}); err != nil {
			return ChurnRow{}, err
		}
	}

	if cfg.Strict {
		if err := auditStrict(row, n); err != nil {
			return ChurnRow{}, err
		}
	}
	return row, nil
}

// auditStrict applies the CI gate's pass/fail rules to one row.
func auditStrict(row ChurnRow, n int) error {
	if !row.Converged {
		return fmt.Errorf("survivors did not converge (final spread %v)", row.FinalSpread)
	}
	// Conservation's two sides. Upper: nothing duplicates weight, so
	// destroyed plus surviving weight can never exceed the N the system
	// started with (victims may die holding more or less than 1, so the
	// surviving weight alone is not bounded by the survivor count).
	// Lower: beyond the kills, only frames torn mid-write by a dying
	// conn may vanish — a handful per kill at worst.
	survivors := float64(row.Survivors)
	if row.WeightDestroyed+row.WeightAtNodes > float64(n)+1e-6 {
		return fmt.Errorf("weight inflated: %v destroyed + %v at nodes > %d started",
			row.WeightDestroyed, row.WeightAtNodes, n)
	}
	if row.WeightAtNodes < survivors/2 {
		return fmt.Errorf("weight conservation broke: %v at nodes, %v survivors (destroyed %v of %d)",
			row.WeightAtNodes, survivors, row.WeightDestroyed, n)
	}
	return nil
}

// ChurnTable renders the rows as the Figure-4-style weight-destroyed
// vs. error table.
func ChurnTable(rows []ChurnRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		converged := "no"
		if r.Converged {
			converged = "yes"
		}
		out[i] = []string{
			experiments.F(r.KillFrac),
			fmt.Sprintf("%d", r.Killed),
			fmt.Sprintf("%d", r.Survivors),
			experiments.F(r.WeightDestroyed),
			experiments.F(r.WeightAtNodes),
			experiments.F(r.FinalSpread),
			converged,
			experiments.F(r.FinalError),
			fmt.Sprintf("%d", r.Drops),
		}
	}
	return experiments.FormatTable([]string{
		"kill frac", "killed", "survivors", "weight destroyed",
		"weight at nodes", "final spread", "converged", "mean error", "send drops",
	}, out)
}
