package experiments

import (
	"math"
	"strings"
	"testing"

	"distclass/internal/core"
	"distclass/internal/gm"
	"distclass/internal/rng"
	"distclass/internal/topology"
	"distclass/internal/vec"
)

func TestFigure2TrueMixture(t *testing.T) {
	mix := Figure2TrueMixture()
	if len(mix) != 3 {
		t.Fatalf("components = %d, want 3", len(mix))
	}
	if math.Abs(mix.TotalWeight()-1) > 1e-12 {
		t.Errorf("weights sum to %v, want 1", mix.TotalWeight())
	}
	for i, c := range mix {
		if c.Dim() != 2 {
			t.Errorf("component %d dim = %d", i, c.Dim())
		}
		if _, err := c.Condition(0); err != nil {
			t.Errorf("component %d covariance not usable: %v", i, err)
		}
	}
}

func TestFigure2Dataset(t *testing.T) {
	r := rng.New(1)
	values, err := Figure2Dataset(500, r)
	if err != nil {
		t.Fatalf("Figure2Dataset: %v", err)
	}
	if len(values) != 500 {
		t.Fatalf("len = %d", len(values))
	}
	for _, v := range values {
		if v.Dim() != 2 || !v.IsFinite() {
			t.Fatalf("bad value %v", v)
		}
	}
}

func TestFigure3Dataset(t *testing.T) {
	r := rng.New(2)
	values, outlier, err := Figure3Dataset(950, 50, 10, r)
	if err != nil {
		t.Fatalf("Figure3Dataset: %v", err)
	}
	if len(values) != 1000 || len(outlier) != 1000 {
		t.Fatalf("sizes %d/%d", len(values), len(outlier))
	}
	// At delta=10 nearly all bad draws are ground-truth outliers and few
	// good draws are.
	badFlagged, goodFlagged := 0, 0
	for i, o := range outlier {
		if i >= 950 && o {
			badFlagged++
		}
		if i < 950 && o {
			goodFlagged++
		}
	}
	if badFlagged < 48 {
		t.Errorf("only %d/50 bad values flagged as outliers", badFlagged)
	}
	if goodFlagged > 25 {
		t.Errorf("%d/950 good values flagged as outliers", goodFlagged)
	}
	if _, _, err := Figure3Dataset(0, 0, 1, r); err == nil {
		t.Errorf("empty dataset should error")
	}
}

func TestStandardNormalDensity2D(t *testing.T) {
	want := 1 / (2 * math.Pi)
	if got := StandardNormalDensity2D(vec.Of(0, 0)); math.Abs(got-want) > 1e-12 {
		t.Errorf("density(0,0) = %v, want %v", got, want)
	}
	if got := StandardNormalDensity2D(vec.Of(0)); got != 0 {
		t.Errorf("wrong-dim density = %v, want 0", got)
	}
	// fmin threshold sanity: a point 5 sigma out is an outlier.
	if StandardNormalDensity2D(vec.Of(0, 5)) >= FMin {
		t.Errorf("(0,5) should be below fmin")
	}
	if StandardNormalDensity2D(vec.Of(0, 1)) < FMin {
		t.Errorf("(0,1) should be above fmin")
	}
}

func TestRunFigure1(t *testing.T) {
	res, err := RunFigure1()
	if err != nil {
		t.Fatalf("RunFigure1: %v", err)
	}
	if res.CentroidPick != "A" {
		t.Errorf("centroid rule picked %s, want A (nearer centroid)", res.CentroidPick)
	}
	if res.GMPick != "B" {
		t.Errorf("GM rule picked %s, want B (larger variance)", res.GMPick)
	}
	if !(res.DistToA < res.DistToB) {
		t.Errorf("scenario broken: dist to A (%v) should be < dist to B (%v)", res.DistToA, res.DistToB)
	}
	if !(res.LogDensB > res.LogDensA) {
		t.Errorf("scenario broken: log density under B (%v) should exceed A (%v)", res.LogDensB, res.LogDensA)
	}
	table := res.Table()
	if !strings.Contains(table, "Gaussian rule picks B") {
		t.Errorf("Table output missing verdict:\n%s", table)
	}
}

func TestRunFigure2Small(t *testing.T) {
	res, err := RunFigure2(Fig2Config{N: 120, K: 7, MaxRounds: 40, Seed: 7})
	if err != nil {
		t.Fatalf("RunFigure2: %v", err)
	}
	if len(res.Estimated) == 0 || len(res.Estimated) > 7 {
		t.Fatalf("estimated components = %d", len(res.Estimated))
	}
	// Node 0 holds only part of the global weight, but its mixture's
	// relative weights describe all inputs; check it covers the true
	// cluster means.
	if res.MeanCoverError > 1.5 {
		t.Errorf("MeanCoverError = %v, want < 1.5", res.MeanCoverError)
	}
	if res.ConvergedRound < 0 {
		t.Logf("did not converge within budget (spread %v) — acceptable for small N", res.FinalSpread)
	}
	if table := res.Table(); !strings.Contains(table, "mean cover error") {
		t.Errorf("Table missing summary line:\n%s", table)
	}
}

func TestRunFigure3SmallSweep(t *testing.T) {
	cfg := Fig3Config{
		NGood:  190,
		NOut:   10,
		Deltas: []float64{3.8, 10, 20},
		Rounds: 30,
		Seed:   3,
	}
	rows, err := RunFigure3(cfg)
	if err != nil {
		t.Fatalf("RunFigure3: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape checks from the paper:
	// At delta=3.8 the outliers overlap the good data's tail: high miss
	// rate, but (as the paper notes) the proximity means the misses
	// barely hurt the estimated average.
	if rows[0].MissPct < 50 {
		t.Errorf("delta=3.8 miss%% = %v, want high (overlapping outliers)", rows[0].MissPct)
	}
	if rows[0].RobustErr > 0.5 {
		t.Errorf("delta=3.8 robust err = %v, want small despite misses", rows[0].RobustErr)
	}
	// At delta=20 the outliers are cleanly separated: low miss rate.
	if rows[2].MissPct > 20 {
		t.Errorf("delta=20 miss%% = %v, want low", rows[2].MissPct)
	}
	// Regular error grows with delta (~ fraction * delta).
	if !(rows[2].RegularErr > rows[0].RegularErr*2) {
		t.Errorf("regular error should grow with delta: %v vs %v", rows[2].RegularErr, rows[0].RegularErr)
	}
	// Robust error at large delta is far below regular error.
	if !(rows[2].RobustErr < rows[2].RegularErr/2) {
		t.Errorf("robust error %v should be well below regular %v at delta=20",
			rows[2].RobustErr, rows[2].RegularErr)
	}
	if table := Fig3Table(rows); !strings.Contains(table, "missed outliers %") {
		t.Errorf("Fig3Table header missing:\n%s", table)
	}
}

func TestRunFigure4Small(t *testing.T) {
	cfg := Fig4Config{
		NGood:     190,
		NOut:      10,
		Delta:     10,
		Rounds:    25,
		CrashProb: 0.05,
		Seed:      4,
	}
	rows, err := RunFigure4(cfg)
	if err != nil {
		t.Fatalf("RunFigure4: %v", err)
	}
	if len(rows) != 25 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	// Regular aggregation converges to the contaminated mean: error ~
	// nOut/n * delta = 0.5.
	if last.RegularNoCrash < 0.3 || last.RegularNoCrash > 0.8 {
		t.Errorf("regular error = %v, want ~0.5", last.RegularNoCrash)
	}
	// Robust error must beat regular.
	if !(last.RobustNoCrash < last.RegularNoCrash) {
		t.Errorf("robust %v should beat regular %v", last.RobustNoCrash, last.RegularNoCrash)
	}
	// Crash traces exist and stay finite.
	if math.IsNaN(last.RobustCrash) || math.IsNaN(last.RegularCrash) {
		t.Errorf("crash traces produced NaN: %+v", last)
	}
	if table := Fig4Table(rows); !strings.Contains(table, "robust+crash") {
		t.Errorf("Fig4Table header missing:\n%s", table)
	}
}

func TestRunTopologyAblation(t *testing.T) {
	cfg := AblationConfig{N: 36, MaxRounds: 200, Seed: 5}
	kinds := []topology.Kind{topology.KindFull, topology.KindGrid, topology.KindER}
	runs, err := RunTopologyAblation(kinds, cfg)
	if err != nil {
		t.Fatalf("RunTopologyAblation: %v", err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, run := range runs {
		if run.Rounds < 0 {
			t.Errorf("%s did not converge (spread %v)", run.Label, run.FinalSpread)
		}
		if run.Messages == 0 {
			t.Errorf("%s sent no messages", run.Label)
		}
		if run.AvgPayload <= 0 || run.AvgPayload > 2.01 {
			t.Errorf("%s avg payload = %v, want in (0, k]", run.Label, run.AvgPayload)
		}
	}
	if table := ConvergenceTable(runs); !strings.Contains(table, "rounds") {
		t.Errorf("ConvergenceTable header missing:\n%s", table)
	}
}

func TestRunTopologyAblationRing(t *testing.T) {
	// Rings mix in Theta(n^2) rounds (Boyd et al.), so a small ring and a
	// generous budget: convergence is guaranteed by the paper's Theorem 1
	// on any connected topology, just slowly here.
	if testing.Short() {
		t.Skip("slow ring mixing")
	}
	cfg := AblationConfig{N: 16, MaxRounds: 2500, Seed: 5}
	runs, err := RunTopologyAblation([]topology.Kind{topology.KindRing}, cfg)
	if err != nil {
		t.Fatalf("RunTopologyAblation: %v", err)
	}
	if runs[0].Rounds < 0 {
		t.Errorf("ring did not converge within %d rounds (spread %v)",
			cfg.MaxRounds, runs[0].FinalSpread)
	}
	// A full mesh on the same data must converge much faster than the
	// ring's quadratic mixing.
	fullRuns, err := RunTopologyAblation([]topology.Kind{topology.KindFull}, cfg)
	if err != nil {
		t.Fatalf("RunTopologyAblation(full): %v", err)
	}
	if fullRuns[0].Rounds < 0 || fullRuns[0].Rounds > runs[0].Rounds {
		t.Errorf("full (%d rounds) should converge no slower than ring (%d rounds)",
			fullRuns[0].Rounds, runs[0].Rounds)
	}
}

func TestRunKQuality(t *testing.T) {
	rows, err := RunKQuality([]int{2, 7}, 100, 30, 6)
	if err != nil {
		t.Fatalf("RunKQuality: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Components < 1 || row.Components > row.K {
			t.Errorf("k=%d: components = %d", row.K, row.Components)
		}
	}
	// More components should not describe the 3-cluster data much worse.
	if rows[1].MeanCoverError > rows[0].MeanCoverError*2+0.5 {
		t.Errorf("k=7 cover error %v much worse than k=2 %v",
			rows[1].MeanCoverError, rows[0].MeanCoverError)
	}
}

func TestRunQAblation(t *testing.T) {
	cfg := AblationConfig{N: 32, MaxRounds: 120, Seed: 7}
	rows, err := RunQAblation([]float64{0.25, 1.0 / 64, 1.0 / (1 << 20)}, cfg)
	if err != nil {
		t.Fatalf("RunQAblation: %v", err)
	}
	for _, row := range rows {
		if row.WeightDrift > 1e-6 {
			t.Errorf("q=%v: weight drift %v", row.Q, row.WeightDrift)
		}
		if row.Rounds < 0 {
			t.Errorf("q=%v did not converge", row.Q)
		}
	}
}

func TestRunPolicyAblation(t *testing.T) {
	runs, err := RunPolicyAblation(AblationConfig{N: 32, MaxRounds: 120, Seed: 8})
	if err != nil {
		t.Fatalf("RunPolicyAblation: %v", err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, run := range runs {
		if run.Rounds < 0 {
			t.Errorf("policy %s did not converge", run.Label)
		}
	}
}

func TestRunMethodComparison(t *testing.T) {
	rows, err := RunMethodComparison(AblationConfig{N: 32, MaxRounds: 120, Seed: 9})
	if err != nil {
		t.Fatalf("RunMethodComparison: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, row := range rows {
		names[row.Method] = true
		if row.Rounds < 0 {
			t.Errorf("method %s did not converge (spread %v)", row.Method, row.FinalSpread)
		}
	}
	if !names["centroids"] || !names["gm"] {
		t.Errorf("missing methods: %v", names)
	}
}

func TestRunHistogramComparison(t *testing.T) {
	res, err := RunHistogramComparison(200, 15, 30, 10)
	if err != nil {
		t.Fatalf("RunHistogramComparison: %v", err)
	}
	// Outliers at +15 with 5% mass shift the histogram mean by ~0.75;
	// the robust estimate should remove them almost entirely.
	if !(res.RobustErr < res.HistogramErr/2) {
		t.Errorf("robust err %v should be well below histogram err %v",
			res.RobustErr, res.HistogramErr)
	}
	if _, err := RunHistogramComparison(5, 10, 10, 1); err == nil {
		t.Errorf("tiny n should error")
	}
}

func TestSpread(t *testing.T) {
	// Identical nodes have zero spread.
	r := rng.New(11)
	values := bimodalDataset(8, r)
	_ = values
	cfg := AblationConfig{N: 8, MaxRounds: 5, Seed: 11}
	cfg = cfg.withDefaults()
	if got := sampleIndices(3, 10); len(got) != 3 {
		t.Errorf("sampleIndices(3, 10) = %v", got)
	}
	if got := sampleIndices(100, 4); len(got) != 4 || got[0] != 0 || got[3] != 75 {
		t.Errorf("sampleIndices(100, 4) = %v", got)
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable([]string{"a", "long-header"}, [][]string{{"xyzzy", "1"}})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "a    ") {
		t.Errorf("header misaligned: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule missing: %q", lines[1])
	}
}

func TestClassifierAgentEmitAtQuantum(t *testing.T) {
	// With Q = 0.5 the first split leaves the node at quantum weight;
	// the adapter must then report nothing to send instead of emitting
	// an empty classification.
	node, err := core.NewNode(0, vec.Of(1, 2), nil,
		core.Config{Method: gm.Method{}, K: 2, Q: 0.5})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	agent := &ClassifierAgent{Node: node}
	if msg, ok := agent.Emit(); !ok || len(msg) != 1 {
		t.Fatalf("first Emit = (%v, %v), want one collection", msg, ok)
	}
	if _, ok := agent.Emit(); ok {
		t.Errorf("second Emit at quantum weight should return not-ok")
	}
	if err := agent.Receive(nil); err != nil {
		t.Errorf("Receive(nil): %v", err)
	}
}

func TestRunModeAblation(t *testing.T) {
	runs, err := RunModeAblation(AblationConfig{N: 32, MaxRounds: 150, Seed: 13})
	if err != nil {
		t.Fatalf("RunModeAblation: %v", err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	byName := map[string]ConvergenceRun{}
	for _, run := range runs {
		byName[run.Label] = run
		if run.Rounds < 0 {
			t.Errorf("mode %s did not converge (spread %v)", run.Label, run.FinalSpread)
		}
	}
	for _, name := range []string{"push", "pull", "push-pull"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing mode %s: %v", name, byName)
		}
	}
	// Push-pull moves twice the weight per round: it must not be slower
	// than plain push by more than a small margin.
	if pp, p := byName["push-pull"].Rounds, byName["push"].Rounds; pp > p+5 {
		t.Errorf("push-pull (%d rounds) much slower than push (%d rounds)", pp, p)
	}
}

func TestRunRelatedWorkComparison(t *testing.T) {
	rows, err := RunRelatedWorkComparison(AblationConfig{N: 48, MaxRounds: 120, Seed: 17})
	if err != nil {
		t.Fatalf("RunRelatedWorkComparison: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	generic := rows[0]
	if generic.GossipRounds <= 0 {
		t.Errorf("generic did not converge: %+v", generic)
	}
	// All three recover the two cluster means on this easy dataset.
	for _, row := range rows {
		if row.MeanError > 0.6 {
			t.Errorf("%s mean error = %v, want < 0.6", row.Algorithm, row.MeanError)
		}
		if row.Messages <= 0 {
			t.Errorf("%s counted no messages", row.Algorithm)
		}
	}
	// The paper's comparison: the baselines pay one aggregation phase
	// per centralized iteration, so when they need more than one
	// iteration they consume more gossip rounds than the one-shot
	// generic run.
	for _, row := range rows[1:] {
		if row.GossipRounds < generic.GossipRounds {
			t.Logf("note: %s used %d rounds vs generic %d (single-iteration convergence)",
				row.Algorithm, row.GossipRounds, generic.GossipRounds)
		}
	}
	if table := RelatedWorkTable(rows); !strings.Contains(table, "gossip rounds") {
		t.Errorf("RelatedWorkTable header missing:\n%s", table)
	}
}

func TestRunReducerAblation(t *testing.T) {
	rows, err := RunReducerAblation(AblationConfig{N: 80, MaxRounds: 60, Seed: 19})
	if err != nil {
		t.Fatalf("RunReducerAblation: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.MeanCoverError > 2.5 {
			t.Errorf("reducer %s cover error = %v", row.Reducer, row.MeanCoverError)
		}
	}
	if rows[0].Reducer != "em" || rows[1].Reducer != "greedy" {
		t.Errorf("reducer labels: %v", rows)
	}
	if table := ReducerTable(rows); !strings.Contains(table, "reducer") {
		t.Errorf("ReducerTable header missing:\n%s", table)
	}
}

func TestRunCrashSweep(t *testing.T) {
	rows, err := RunCrashSweep([]float64{0, 0.05, 0.2}, Fig4Config{
		NGood: 190, NOut: 10, Delta: 10, Rounds: 20, Seed: 23,
	})
	if err != nil {
		t.Fatalf("RunCrashSweep: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// With no crashes everyone survives and the robust error is small.
	if rows[0].Survivors != 200 {
		t.Errorf("p=0 survivors = %d, want 200", rows[0].Survivors)
	}
	if rows[0].RobustErr > 0.4 {
		t.Errorf("p=0 robust err = %v", rows[0].RobustErr)
	}
	// Higher crash rates leave fewer survivors.
	if !(rows[2].Survivors < rows[1].Survivors && rows[1].Survivors < rows[0].Survivors) {
		t.Errorf("survivors not decreasing: %d %d %d",
			rows[0].Survivors, rows[1].Survivors, rows[2].Survivors)
	}
	// Robust beats regular wherever both have survivors.
	for _, row := range rows {
		if row.Survivors > 10 && !math.IsNaN(row.RegularErr) && row.RobustErr > row.RegularErr {
			t.Errorf("p=%v: robust %v worse than regular %v", row.CrashProb, row.RobustErr, row.RegularErr)
		}
	}
	if table := CrashSweepTable(rows); !strings.Contains(table, "survivors") {
		t.Errorf("CrashSweepTable header missing:\n%s", table)
	}
}

func TestRunScalabilityAblation(t *testing.T) {
	rows, err := RunScalabilityAblation([]int{16, 64, 128}, AblationConfig{MaxRounds: 200, Seed: 29})
	if err != nil {
		t.Fatalf("RunScalabilityAblation: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Rounds < 0 {
			t.Errorf("n=%d did not converge", row.N)
		}
		// The paper's message-size claim: payload bounded by k regardless
		// of n.
		if row.AvgPayload > 2.01 {
			t.Errorf("n=%d payload = %v exceeds k", row.N, row.AvgPayload)
		}
	}
	// Rounds grow sublinearly: going 16 -> 128 (8x) must not multiply
	// rounds by 8.
	if rows[2].Rounds > rows[0].Rounds*8 {
		t.Errorf("rounds grew linearly or worse: %d -> %d", rows[0].Rounds, rows[2].Rounds)
	}
	if table := ScalabilityTable(rows); !strings.Contains(table, "colls/msg") {
		t.Errorf("ScalabilityTable header missing:\n%s", table)
	}
}

func TestRunOutlierMethodComparison(t *testing.T) {
	rows, err := RunOutlierMethodComparison(10, 190, 10, 30, 31)
	if err != nil {
		t.Fatalf("RunOutlierMethodComparison: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, row := range rows {
		byName[row.Method] = row.RobustErr
	}
	// The GM method separates the outliers; its robust error must be
	// small. (The centroids method often splits by distance as well on
	// this easy geometry, so only GM's absolute quality is asserted.)
	if byName["gm"] > 0.2 {
		t.Errorf("gm robust err = %v, want < 0.2", byName["gm"])
	}
	if _, ok := byName["centroids"]; !ok {
		t.Errorf("missing centroids row: %v", rows)
	}
}

func TestRunLossAblation(t *testing.T) {
	rows, err := RunLossAblation([]float64{0, 0.1, 0.3}, AblationConfig{N: 48, MaxRounds: 60, Seed: 37})
	if err != nil {
		t.Fatalf("RunLossAblation: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].WeightLost > 1e-9 {
		t.Errorf("p=0 lost weight: %v", rows[0].WeightLost)
	}
	if !(rows[1].WeightLost > 0.01 && rows[2].WeightLost > rows[1].WeightLost) {
		t.Errorf("weight loss not increasing: %v %v", rows[1].WeightLost, rows[2].WeightLost)
	}
	// Despite heavy loss the cluster means remain usable (graceful
	// degradation, not collapse).
	for _, row := range rows {
		if row.RobustErr > 1.5 {
			t.Errorf("p=%v cluster-mean err = %v", row.DropProb, row.RobustErr)
		}
	}
	if table := LossTable(rows); !strings.Contains(table, "weight lost %") {
		t.Errorf("LossTable header missing:\n%s", table)
	}
}

func TestRunKAblation(t *testing.T) {
	runs, err := RunKAblation([]int{2, 4}, AblationConfig{N: 48, MaxRounds: 80, Seed: 41})
	if err != nil {
		t.Fatalf("RunKAblation: %v", err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, run := range runs {
		if run.Messages == 0 {
			t.Errorf("%s sent no messages", run.Label)
		}
	}
	if runs[0].Label != "k=2" || runs[1].Label != "k=4" {
		t.Errorf("labels: %v", runs)
	}
	// Payload is bounded by the k in force.
	if runs[0].AvgPayload > 2.01 || runs[1].AvgPayload > 4.01 {
		t.Errorf("payloads exceed k: %v / %v", runs[0].AvgPayload, runs[1].AvgPayload)
	}
}

func TestRunDimensionAblation(t *testing.T) {
	rows, err := RunDimensionAblation([]int{1, 3, 6}, AblationConfig{N: 48, MaxRounds: 120, Seed: 43})
	if err != nil {
		t.Fatalf("RunDimensionAblation: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Rounds < 0 {
			t.Errorf("d=%d did not converge (spread %v)", row.D, row.FinalSpread)
		}
		// The cluster means stay within ~the noise scale of the truth at
		// every dimensionality.
		if row.ClusterErr > 1.5 {
			t.Errorf("d=%d cluster err = %v", row.D, row.ClusterErr)
		}
	}
	if _, err := RunDimensionAblation([]int{0}, AblationConfig{}); err == nil {
		t.Errorf("d=0 accepted")
	}
	if table := DimensionTable(rows); !strings.Contains(table, "cluster err") {
		t.Errorf("DimensionTable header missing:\n%s", table)
	}
}
