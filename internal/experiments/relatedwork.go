package experiments

import (
	"fmt"
	"math"

	"distclass/internal/core"
	"distclass/internal/dkmeans"
	"distclass/internal/engine"
	"distclass/internal/gauss"
	"distclass/internal/gm"
	"distclass/internal/rng"
	"distclass/internal/topology"
	"distclass/internal/vec"
)

// buildClassifierNetwork wires one generic-algorithm node per value
// into a round-driver network.
func buildClassifierNetwork(graph *topology.Graph, values []vec.Vector, method core.Method, k int, q float64, r *rng.RNG) ([]*core.Node, *engine.RoundDriver[core.Classification], error) {
	nodes := make([]*core.Node, graph.N())
	agents := make([]engine.Agent[core.Classification], graph.N())
	for i := range nodes {
		node, err := core.NewNode(i, values[i], nil, core.Config{Method: method, K: k, Q: q})
		if err != nil {
			return nil, nil, err
		}
		nodes[i] = node
		agents[i] = &ClassifierAgent{Node: node}
	}
	net, err := engine.NewRoundDriver(graph, agents, r, engine.Options[core.Classification]{})
	if err != nil {
		return nil, nil, err
	}
	return nodes, net, nil
}

// RelatedWorkRow reports one algorithm in the related-work comparison.
type RelatedWorkRow struct {
	// Algorithm names the contender.
	Algorithm string
	// GossipRounds is the total gossip rounds consumed until the
	// algorithm's own stopping rule fired.
	GossipRounds int
	// Messages is the total messages sent.
	Messages int
	// MeanError is the average distance from each true cluster mean to
	// the nearest estimated mean.
	MeanError float64
}

// RunRelatedWorkComparison pits the paper's one-shot generic algorithm
// against the iterative related-work baselines (§2) on the same bimodal
// dataset and topology: gossip-based distributed k-means (Datta et al.)
// and Newscast EM (Kowalczyk & Vlassis) each pay one full
// gossip-averaging phase per centralized iteration, while the generic
// algorithm classifies in a single gossip run.
func RunRelatedWorkComparison(cfg AblationConfig) ([]RelatedWorkRow, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	values := bimodalDataset(cfg.N, r)
	graph, err := topology.Full(cfg.N)
	if err != nil {
		return nil, err
	}
	truth := []vec.Vector{vec.Of(-4, 0), vec.Of(4, 0)}

	var rows []RelatedWorkRow

	// This paper: one gossip classification run.
	run, err := runConvergence("generic (this paper)", graph, values, gm.Method{}, cfg, 0, 0, 0, r.Split())
	if err != nil {
		return nil, fmt.Errorf("experiments: generic: %w", err)
	}
	// Quality: node 0's view after a fresh run of the same seed is not
	// retained by runConvergence, so re-derive it quickly.
	quality, err := genericQuality(graph, values, cfg, truth, r.Split())
	if err != nil {
		return nil, err
	}
	rows = append(rows, RelatedWorkRow{
		Algorithm:    run.Label,
		GossipRounds: maxInt(run.Rounds, 0),
		Messages:     run.Messages,
		MeanError:    quality,
	})

	// Distributed k-means: one aggregation phase per Lloyd iteration.
	opts := dkmeans.Options{RoundsPerIter: 25, MaxIters: 10}
	km, err := dkmeans.KMeans(values, cfg.K, graph, r.Split(), opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: dkmeans: %w", err)
	}
	rows = append(rows, RelatedWorkRow{
		Algorithm:    "distributed k-means (Datta et al.)",
		GossipRounds: km.GossipRounds,
		Messages:     km.Messages,
		MeanError:    meansError(truth, km.Centroids),
	})

	// Newscast EM: one aggregation phase per EM iteration.
	nem, err := dkmeans.NewscastEM(values, cfg.K, graph, r.Split(), opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: newscast em: %w", err)
	}
	means := make([]vec.Vector, len(nem.Mixture))
	for i, c := range nem.Mixture {
		means[i] = c.Mean
	}
	rows = append(rows, RelatedWorkRow{
		Algorithm:    "newscast EM (Kowalczyk & Vlassis)",
		GossipRounds: nem.GossipRounds,
		Messages:     nem.Messages,
		MeanError:    meansError(truth, means),
	})
	return rows, nil
}

// genericQuality runs the generic GM classification once and returns
// the truth-coverage error of node 0's final mixture.
func genericQuality(graph *topology.Graph, values []vec.Vector, cfg AblationConfig, truth []vec.Vector, r *rng.RNG) (float64, error) {
	truthMix := make(gauss.Mixture, len(truth))
	for i, m := range truth {
		truthMix[i] = gauss.Component{Gaussian: gauss.NewPoint(m), Weight: 1}
	}
	nodes, net, err := buildClassifierNetwork(graph, values, gm.Method{}, cfg.K, 0, r)
	if err != nil {
		return 0, err
	}
	if err := net.RunRounds(cfg.MaxRounds, nil); err != nil {
		return 0, err
	}
	mix, err := gm.ToMixture(nodes[0].Classification())
	if err != nil {
		return 0, err
	}
	return MeanCoverError(truthMix, mix)
}

// meansError is the average distance from each true mean to its nearest
// estimate.
func meansError(truth, estimated []vec.Vector) float64 {
	if len(estimated) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, t := range truth {
		best := math.Inf(1)
		for _, e := range estimated {
			if d := math.Sqrt(vec.DistSq(t, e)); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(truth))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RelatedWorkTable renders the comparison.
func RelatedWorkTable(rows []RelatedWorkRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Algorithm,
			fmt.Sprintf("%d", r.GossipRounds),
			fmt.Sprintf("%d", r.Messages),
			F(r.MeanError),
		}
	}
	return FormatTable([]string{"algorithm", "gossip rounds", "messages", "mean error"}, out)
}
