package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked body of files that the analyzers inspect: a
// package together with its in-package test files, or the external
// _test package of a directory. Test files are analyzed with the same
// rules as production code unless a rule documents otherwise.
type Unit struct {
	// Fset positions every file in every unit of a load.
	Fset *token.FileSet
	// Files are the parsed files of the unit, sorted by filename.
	Files []*ast.File
	// Rel is the unit directory relative to the module root, always
	// "/"-separated ("." for the root package). Rules match on Rel so
	// the suite works identically on the fixture module used in tests.
	Rel string
	// Module is the module path from go.mod; rules that inspect
	// module-local import paths join it with a module-relative
	// directory.
	Module string
	// Pkg and Info carry the go/types results. On type errors the
	// info may be partial; analyzers must tolerate missing entries.
	Pkg  *types.Package
	Info *types.Info
	// TypeErrors collects type-checker complaints. The loader does
	// not fail on them: the build gate catches real type errors, and
	// the linter still reports what it can see.
	TypeErrors []error
}

// InDir reports whether the unit lives in the given module-relative
// directory (e.g. "internal/rng").
func (u *Unit) InDir(rel string) bool { return u.Rel == rel }

// IsTestFile reports whether the file containing pos is a _test.go file.
func (u *Unit) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(u.Fset.Position(pos).Filename, "_test.go")
}

// Load parses and type-checks the packages selected by patterns under
// the module rooted at root (the directory containing go.mod). A
// pattern is a module-relative directory, optionally ending in "/..."
// for a recursive walk; "./..." selects the whole module. Directories
// named testdata or vendor and names starting with "." or "_" are
// skipped, matching go tool conventions.
//
// Module-local imports are resolved by the standard library's source
// importer, which requires the process working directory to be inside
// the module when the analyzed code imports module-local packages.
func Load(root string, patterns []string) ([]*Unit, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := &moduleFallbackImporter{
		imp:    importer.ForCompiler(fset, "source", nil),
		module: module,
		cache:  make(map[string]*types.Package),
	}
	var units []*Unit
	for _, dir := range dirs {
		us, err := loadDir(fset, imp, root, module, dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// expand resolves the patterns into a sorted, de-duplicated list of
// directories containing Go files.
func expand(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	for _, p := range patterns {
		p = filepath.ToSlash(p)
		recursive := false
		if p == "..." || strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
		}
		if p == "" {
			p = "."
		}
		dir := filepath.Join(root, filepath.FromSlash(p))
		if !recursive {
			if hasGoFiles(dir) {
				seen[dir] = true
			}
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				seen[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", dir, err)
		}
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && goFileName(e.Name()) {
			return true
		}
	}
	return false
}

// goFileName reports whether name is a Go file the loader should parse.
func goFileName(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// loadDir parses one directory and type-checks up to two units: the
// package plus its in-package test files, and the external _test
// package if present.
func loadDir(fset *token.FileSet, imp types.Importer, root, module, dir string) ([]*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && goFileName(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	var pkgFiles, extFiles []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			extFiles = append(extFiles, f)
		} else {
			pkgFiles = append(pkgFiles, f)
		}
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	rel = filepath.ToSlash(rel)
	path := module
	if rel != "." {
		path = module + "/" + rel
	}

	var units []*Unit
	if len(pkgFiles) > 0 {
		units = append(units, check(fset, imp, path, rel, module, pkgFiles))
	}
	if len(extFiles) > 0 {
		units = append(units, check(fset, imp, path+"_test", rel, module, extFiles))
	}
	return units, nil
}

// check type-checks one unit, tolerating type errors.
func check(fset *token.FileSet, imp types.Importer, path, rel, module string, files []*ast.File) *Unit {
	u := &Unit{
		Fset:   fset,
		Files:  files,
		Rel:    rel,
		Module: module,
		Info: &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Uses:  make(map[*ast.Ident]types.Object),
			Defs:  make(map[*ast.Ident]types.Object),
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
	}
	// The returned error repeats the first entry of TypeErrors; partial
	// results are still usable, so it is deliberately not propagated.
	u.Pkg, _ = conf.Check(path, fset, files, u.Info)
	return u
}

// moduleFallbackImporter wraps the source importer: a module-local
// import the importer cannot resolve (the process working directory is
// outside the analyzed module, as when the test suite lints its
// fixture module) degrades to an empty placeholder package instead of
// failing the whole unit. Import correctness is the build gate's job;
// the linter only needs the import declarations and whatever types do
// resolve.
type moduleFallbackImporter struct {
	imp    types.Importer
	module string
	cache  map[string]*types.Package
}

func (m *moduleFallbackImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, ".", 0)
}

func (m *moduleFallbackImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	var pkg *types.Package
	var err error
	if from, ok := m.imp.(types.ImporterFrom); ok {
		pkg, err = from.ImportFrom(path, dir, mode)
	} else {
		pkg, err = m.imp.Import(path)
	}
	if err == nil {
		return pkg, nil
	}
	if path != m.module && !strings.HasPrefix(path, m.module+"/") {
		return nil, err
	}
	if p, ok := m.cache[path]; ok {
		return p, nil
	}
	p := types.NewPackage(path, path[strings.LastIndex(path, "/")+1:])
	p.MarkComplete()
	m.cache[path] = p
	return p, nil
}
