package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// epsilonDirs are the packages that implement the approved comparison
// helpers (vec.Equal/ApproxEqual, mat.Equal/ApproxEqual, the stats
// accumulators); exact float comparison is their job.
//
//lint:allow globalstate immutable rule table, written only at init
var epsilonDirs = map[string]bool{
	"internal/vec":   true,
	"internal/mat":   true,
	"internal/stats": true,
}

// FloatCmp reports == and != between floating-point operands outside
// the epsilon-helper packages. Exact float equality is almost never what
// a numerics codepath means (summation order, fused multiply-add and
// parallel reduction all perturb low bits); go through
// vec/mat.ApproxEqual or an explicit tolerance.
//
// Test files are exempt: determinism tests assert bit-exact equality on
// purpose (same seed must mean the same bits), and table tests compare
// against exact literals.
type FloatCmp struct{}

// Name implements Analyzer.
func (FloatCmp) Name() string { return "floatcmp" }

// Doc implements Analyzer.
func (FloatCmp) Doc() string {
	return "no ==/!= on floating-point operands outside the epsilon helpers in vec, mat and stats"
}

// Check implements Analyzer.
func (FloatCmp) Check(u *Unit) []Diagnostic {
	if epsilonDirs[u.Rel] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range u.Files {
		if u.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			x, xok := u.Info.Types[cmp.X]
			y, yok := u.Info.Types[cmp.Y]
			if !xok || !yok {
				return true // type info incomplete; the build gate owns this
			}
			if x.Value != nil && y.Value != nil {
				return true // constant expression, evaluated exactly at compile time
			}
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:     u.Fset.Position(cmp.OpPos),
				Rule:    "floatcmp",
				Message: "floating-point " + cmp.Op.String() + "; use an epsilon helper (vec/mat ApproxEqual) or an explicit tolerance",
			})
			return true
		})
	}
	return diags
}

// isFloat reports whether t's core type is a floating-point or complex
// scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
