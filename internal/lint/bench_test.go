package lint

import (
	"runtime"
	"testing"
)

// BenchmarkLintModule measures the three operating points of the suite
// over the fixture module: the serial uncached baseline, the parallel
// cold run, and the parallel warm-cache run (the steady state of
// `make lint`, which should be dominated by file hashing, not type
// checking).
func BenchmarkLintModule(b *testing.B) {
	patterns := []string{"./..."}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LintModule(fixtureRoot, patterns, Options{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("parallel-cold", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			if _, err := LintModule(fixtureRoot, patterns, Options{Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-cache", func(b *testing.B) {
		opts := Options{CacheDir: b.TempDir(), Workers: runtime.GOMAXPROCS(0)}
		if _, err := LintModule(fixtureRoot, patterns, opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := LintModule(fixtureRoot, patterns, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheHits != res.Dirs {
				b.Fatalf("warm run missed the cache: %d of %d", res.CacheHits, res.Dirs)
			}
		}
	})
}
