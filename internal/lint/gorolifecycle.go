package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLifecycle reports `go` statements in non-test code that have no
// provable shutdown path. A goroutine that nothing can stop leaks
// across engine Stop — it keeps mutating nodes, counters and trace
// sinks after the run settled its conservation books. The rule accepts
// a goroutine as lifecycle-tied when any of the following holds:
//
//   - its body calls Done() on a sync.WaitGroup (conventionally
//     deferred) — someone Waits for it;
//   - its body receives from a context's Done() channel or from a
//     `chan struct{}` done/quit channel (directly, in a select, or by
//     ranging over it);
//   - an earlier statement in the same block calls Add on a
//     sync.WaitGroup — the `wg.Add(1); go ...` idiom where the body
//     delegates to a helper the analyzer cannot see into.
//
// A `go` call to a named function declared in the same package is
// checked against that function's body. Fire-and-forget goroutines
// that are genuinely bounded by construction (an Accept loop ended by
// closing the listener, a server ended by Close) carry an explicit
// //lint:allow with the shutdown argument spelled out.
type GoroLifecycle struct{}

// Name implements Analyzer.
func (GoroLifecycle) Name() string { return "gorolifecycle" }

// Doc implements Analyzer.
func (GoroLifecycle) Doc() string {
	return "every goroutine needs a provable shutdown path: WaitGroup, done/quit channel, or context"
}

// Check implements Analyzer.
func (GoroLifecycle) Check(u *Unit) []Diagnostic {
	funcs := u.packageFuncs()
	var diags []Diagnostic
	for _, f := range u.Files {
		if u.IsTestFile(f.Pos()) {
			continue
		}
		// Visit every statement list so the preceding-sibling context of
		// each go statement is available.
		inspectStmtLists(f, func(list []ast.Stmt) {
			for i, stmt := range list {
				gs, ok := stmt.(*ast.GoStmt)
				if !ok {
					continue
				}
				if u.waitGroupAddBefore(list[:i]) {
					continue
				}
				if body := u.goroutineBody(gs, funcs); body != nil && u.lifecycleTied(body) {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:     u.Fset.Position(gs.Pos()),
					Rule:    "gorolifecycle",
					Message: "goroutine has no provable shutdown path (WaitGroup Done, done/quit channel, or context); it would leak across Stop",
				})
			}
		})
	}
	return diags
}

// packageFuncs indexes the unit's function declarations by their
// types object, so `go pkgFunc()` and `go recv.method()` can be
// checked against the callee's body.
func (u *Unit) packageFuncs() map[types.Object]*ast.FuncDecl {
	out := make(map[types.Object]*ast.FuncDecl)
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := u.Info.Defs[fd.Name]; obj != nil {
				out[obj] = fd
			}
		}
	}
	return out
}

// goroutineBody resolves the block the goroutine will execute: the
// literal's body, or the body of a same-package named function or
// method. nil when the callee is opaque (external or dynamic).
func (u *Unit) goroutineBody(gs *ast.GoStmt, funcs map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := funcs[u.Info.Uses[fun]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := funcs[u.Info.Uses[fun.Sel]]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// waitGroupAddBefore reports whether an earlier statement in the same
// block calls Add on a sync.WaitGroup.
func (u *Unit) waitGroupAddBefore(before []ast.Stmt) bool {
	for _, stmt := range before {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if ok && u.isSyncCall(call, "WaitGroup", "Add") {
			return true
		}
	}
	return false
}

// lifecycleTied reports whether the goroutine body contains shutdown
// evidence. Nested function literals and nested go statements are not
// descended into: their lifecycle is their own.
func (u *Unit) lifecycleTied(body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A deferred literal still runs on this goroutine; inspect
			// it (defer func() { wg.Done() }() is common).
			return true
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if u.isSyncCall(n, "WaitGroup", "Done") {
				tied = true
				return false
			}
		case *ast.UnaryExpr:
			// <-ctx.Done(), <-done
			if n.Op == token.ARROW && u.isShutdownChan(n.X) {
				tied = true
				return false
			}
		case *ast.RangeStmt:
			if u.isShutdownChan(n.X) {
				tied = true
				return false
			}
		}
		return true
	})
	return tied
}

// isSyncCall reports whether the call is method `name` on a sync.`recv`
// value (directly or through an embedded/promoted field).
func (u *Unit) isSyncCall(call *ast.CallExpr, recv, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == recv
}

// isShutdownChan reports whether expr is a shutdown signal source: a
// context Done() channel or any channel of struct{} (the done/quit
// channel convention).
func (u *Unit) isShutdownChan(expr ast.Expr) bool {
	if call, ok := expr.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if fn, ok := u.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				return true
			}
		}
	}
	tv, ok := u.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
