package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// ChanMisuse reports two channel-protocol violations:
//
//  1. Send on a possibly-nil channel: a channel variable declared with
//     `var ch chan T` and used in a send without a definite assignment
//     at the same block level first. A nil-channel send blocks
//     forever — in this codebase that is a gossip goroutine silently
//     parking, which reads as a stalled node, not a bug report.
//
//  2. Close by a non-owner: a struct channel field annotated
//     `// closed by <func>` may only be closed inside the named
//     function (comma-separated names allow shared ownership, e.g. an
//     Op and its test helper). Closing a channel from two places is a
//     panic; the annotation makes the single owner machine-checkable.
//
// Like lockguard, the nil analysis is a conservative linear walk: an
// assignment inside a nested block does not count as definite for code
// after the block (`if x { ch = make(...) }; ch <- v` stays a
// finding — the else path really does send on nil).
type ChanMisuse struct{}

// Name implements Analyzer.
func (ChanMisuse) Name() string { return "chanmisuse" }

// Doc implements Analyzer.
func (ChanMisuse) Doc() string {
	return "no sends on possibly-nil channels; `// closed by <func>` fields close only in their owner"
}

// closedByRe extracts the owner list from a field comment.
//
//lint:allow globalstate immutable rule table, written only at init
var closedByRe = regexp.MustCompile(`closed by (\w+(?:\s*,\s*\w+)*)`)

// Check implements Analyzer.
func (ChanMisuse) Check(u *Unit) []Diagnostic {
	diags := u.checkCloseOwners()
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, u.checkNilSends(fd.Body)...)
		}
	}
	return diags
}

// checkNilSends walks one function body tracking channel variables
// declared nil (`var ch chan T`) and flags sends that can execute
// before any definite assignment.
func (u *Unit) checkNilSends(body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	nilChans := make(map[types.Object]bool)
	var walk func(list []ast.Stmt, local map[types.Object]bool)
	assigned := func(local map[types.Object]bool, expr ast.Expr) {
		if id, ok := expr.(*ast.Ident); ok {
			if obj := u.Info.Uses[id]; obj != nil && local[obj] {
				local[obj] = false
			}
		}
	}
	checkSend := func(local map[types.Object]bool, ch ast.Expr, pos ast.Node) {
		id, ok := ch.(*ast.Ident)
		if !ok {
			return
		}
		if obj := u.Info.Uses[id]; obj != nil && local[obj] {
			diags = append(diags, Diagnostic{
				Pos:     u.Fset.Position(pos.Pos()),
				Rule:    "chanmisuse",
				Message: "send on " + id.Name + ", declared `var " + id.Name + " chan ...` and possibly still nil here; a nil-channel send blocks forever",
			})
		}
	}
	clone := func(m map[types.Object]bool) map[types.Object]bool {
		out := make(map[types.Object]bool, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	walk = func(list []ast.Stmt, local map[types.Object]bool) {
		for _, stmt := range list {
			switch s := stmt.(type) {
			case *ast.DeclStmt:
				gd, ok := s.Decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) > 0 {
						continue
					}
					if _, isChan := vs.Type.(*ast.ChanType); !isChan {
						continue
					}
					for _, name := range vs.Names {
						if obj := u.Info.Defs[name]; obj != nil {
							local[obj] = true
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					assigned(local, lhs)
				}
			case *ast.SendStmt:
				checkSend(local, s.Chan, s)
			case *ast.ExprStmt:
				// &ch escaping makes the channel unknowable; clear it.
				ast.Inspect(s.X, func(n ast.Node) bool {
					if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == token.AND {
						assigned(local, ue.X)
					}
					return true
				})
			case *ast.IfStmt:
				if s.Init != nil {
					walk([]ast.Stmt{s.Init}, local)
				}
				walk(s.Body.List, clone(local))
				if s.Else != nil {
					if eb, ok := s.Else.(*ast.BlockStmt); ok {
						walk(eb.List, clone(local))
					} else {
						walk([]ast.Stmt{s.Else}, clone(local))
					}
				}
			case *ast.ForStmt:
				walk(s.Body.List, clone(local))
			case *ast.RangeStmt:
				walk(s.Body.List, clone(local))
			case *ast.BlockStmt:
				walk(s.List, clone(local))
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walk(cc.Body, clone(local))
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok {
						continue
					}
					if send, ok := cc.Comm.(*ast.SendStmt); ok {
						checkSend(local, send.Chan, send)
					}
					walk(cc.Body, clone(local))
				}
			case *ast.LabeledStmt:
				walk([]ast.Stmt{s.Stmt}, local)
			case *ast.GoStmt:
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body.List, clone(local))
				}
			case *ast.DeferStmt:
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body.List, clone(local))
				}
			}
		}
	}
	walk(body.List, nilChans)
	return diags
}

// checkCloseOwners enforces `// closed by <func>` field annotations:
// close(x.field) outside the named functions is a finding.
func (u *Unit) checkCloseOwners() []Diagnostic {
	owners := u.collectCloseOwners()
	var diags []Diagnostic
	if len(owners) == 0 {
		return diags
	}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "close" {
					return true
				}
				if _, builtin := u.Info.Uses[id].(*types.Builtin); !builtin {
					return true
				}
				sel, ok := call.Args[0].(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fieldObj := u.Info.Uses[sel.Sel]
				if fieldObj == nil {
					return true
				}
				allowed, annotated := owners[fieldObj]
				if !annotated || allowed[fd.Name.Name] {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:     u.Fset.Position(call.Pos()),
					Rule:    "chanmisuse",
					Message: "close of " + sel.Sel.Name + " in " + fd.Name.Name + ", but the field is `// closed by` another function; double close panics",
				})
				return true
			})
		}
	}
	return diags
}

// collectCloseOwners maps annotated channel fields to their permitted
// closer function names.
func (u *Unit) collectCloseOwners() map[types.Object]map[string]bool {
	owners := make(map[types.Object]map[string]bool)
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				names := closeOwnerNames(field)
				if names == nil {
					continue
				}
				for _, id := range field.Names {
					if obj := u.Info.Defs[id]; obj != nil {
						owners[obj] = names
					}
				}
			}
			return true
		})
	}
	return owners
}

// closeOwnerNames parses a `closed by a, b` annotation into a name
// set, or nil when the field carries none.
func closeOwnerNames(field *ast.Field) map[string]bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		m := closedByRe.FindStringSubmatch(cg.Text())
		if m == nil {
			continue
		}
		names := make(map[string]bool)
		for _, name := range splitCommaList(m[1]) {
			names[name] = true
		}
		return names
	}
	return nil
}

// splitCommaList splits "a, b,c" into trimmed names.
func splitCommaList(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ',' && s[i] != ' ' && s[i] != '\t' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}
