// Package lint is the repository's custom static-analysis suite. It
// enforces the determinism and numerics invariants the paper
// reproduction depends on (see DESIGN.md, "Determinism contract"):
// every stochastic choice flows through internal/rng, deterministic
// packages never read the wall clock, floating-point equality goes
// through the epsilon helpers, map iteration never leaks ordering into
// output, mutable package state stays out of the protocol, and the
// experiments and cmd layers drive the protocol through
// internal/engine rather than a concrete driver.
//
// A second family machine-checks the concurrency contract the live
// system depends on (DESIGN.md §8): mutex-guard annotations
// (`// guarded by <mu>`) are enforced at every field access, every
// goroutine must have a provable shutdown path, errors on the
// conservation-critical send/encode/absorb paths may not be dropped,
// and channel ownership annotations (`// closed by <func>`) pin the
// one function allowed to close a channel.
//
// The suite is built purely on the standard library's go/ast, go/parser,
// go/token and go/types (with the source importer), keeping the module
// dependency-free. cmd/distclass-lint is the CLI front end; `make lint`
// runs it over the whole module, in parallel across a worker pool and
// behind a content-hash diagnostic cache (see LintModule).
//
// # Suppressing a finding
//
// A finding can be suppressed with an inline directive on the offending
// line or on the line directly above it:
//
//	//lint:allow <rule> <reason>
//
// The reason is mandatory: an allow without a justification is itself
// reported. Suppressions are deliberate, reviewable exceptions — the
// reason string is for the reviewer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a rule violation at a position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form
// consumed by editors and CI log scanners.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is a single lint rule.
type Analyzer interface {
	// Name is the rule identifier used in diagnostics and
	// //lint:allow directives.
	Name() string
	// Doc is a one-line description of what the rule enforces.
	Doc() string
	// Check inspects one type-checked unit and reports findings. It
	// must not mutate the unit.
	Check(u *Unit) []Diagnostic
}

// All returns the full analyzer suite in stable order: the
// determinism/numerics family (PR 2) followed by the
// concurrency/protocol-contract family.
func All() []Analyzer {
	return []Analyzer{
		NoRand{},
		NoWallClock{},
		FloatCmp{},
		MapIter{},
		GlobalState{},
		Layering{},
		LockGuard{},
		GoroLifecycle{},
		ErrConserve{},
		ChanMisuse{},
	}
}

// directive is a parsed //lint:allow comment.
type directive struct {
	rule   string
	reason string
	line   int
	// standalone is true when the comment is alone on its line; only
	// standalone directives reach forward to the next line, so a
	// trailing directive cannot accidentally waive its neighbor below.
	standalone bool
}

const directivePrefix = "lint:allow"

// directives extracts every //lint:allow comment from the file, keyed
// by line. Malformed directives (missing rule or reason) are returned
// as diagnostics so they cannot silently suppress nothing.
func directives(fset *token.FileSet, f *ast.File) (map[int][]directive, []Diagnostic) {
	var diags []Diagnostic
	out := make(map[int][]directive)
	code := codeLines(fset, f)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
			if len(fields) < 2 {
				diags = append(diags, Diagnostic{
					Pos:     pos,
					Rule:    "directive",
					Message: "malformed //lint:allow: want `//lint:allow <rule> <reason>`",
				})
				continue
			}
			out[pos.Line] = append(out[pos.Line], directive{
				rule:       fields[0],
				reason:     strings.Join(fields[1:], " "),
				line:       pos.Line,
				standalone: !code[pos.Line],
			})
		}
	}
	return out, diags
}

// Run applies every analyzer to every unit, drops findings suppressed
// by a //lint:allow directive on the same or the preceding line, and
// returns the remainder sorted by position.
func Run(units []*Unit, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, u := range units {
		allowed := make(map[string]map[int][]directive) // filename -> line -> directives
		for _, f := range u.Files {
			ds, bad := directives(u.Fset, f)
			diags = append(diags, bad...)
			name := u.Fset.Position(f.Pos()).Filename
			allowed[name] = ds
		}
		for _, a := range analyzers {
			for _, d := range a.Check(u) {
				if suppressed(allowed[d.Pos.Filename], a.Name(), d.Pos.Line) {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders findings by position, then rule.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// suppressed reports whether a finding for rule at line is covered by a
// directive on the same line, or a standalone directive on the line
// directly above.
func suppressed(byLine map[int][]directive, rule string, line int) bool {
	for _, d := range byLine[line] {
		if d.rule == rule {
			return true
		}
	}
	for _, d := range byLine[line-1] {
		if d.rule == rule && d.standalone {
			return true
		}
	}
	return false
}

// codeLines returns the set of lines that hold at least one
// non-comment token, used to classify directives as trailing or
// standalone.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}
