// Package rng mirrors the real internal/rng: the one place allowed to
// import stdlib randomness (norand true negative).
package rng

import "math/rand/v2"

// New returns a seeded generator.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 1))
}
