// Package livenet mirrors the real internal/livenet: a concrete
// transport that only internal/engine may import (layering).
package livenet

// Frames is a stand-in transport entry point.
func Frames() int { return 0 }
