// Package core mirrors the real internal/core: a deterministic package
// where wall-clock reads are banned.
package core

import "time"

// Tick is a wall-clock read in a deterministic package.
func Tick() time.Time {
	return time.Now() // want nowallclock
}

// Wait sleeps and waits on real timers.
func Wait(d time.Duration) {
	time.Sleep(d)   // want nowallclock
	<-time.After(d) // want nowallclock
}

// Elapsed measures with the wall clock but is explicitly waived.
func Elapsed(start time.Time) time.Duration {
	//lint:allow nowallclock benchmark helper measures real host time on purpose
	return time.Since(start)
}

// Scale is pure duration arithmetic: no clock read, not a finding.
func Scale(d time.Duration) time.Duration {
	return 3 * d / 2
}
