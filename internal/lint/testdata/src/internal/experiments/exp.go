// Package experiments mirrors the real experiments layer: it must
// reach the protocol through internal/engine only, never a concrete
// driver (layering).
package experiments

import (
	_ "fixmod/internal/engine"
	_ "fixmod/internal/livenet" // want layering
	_ "fixmod/internal/sim"     // want layering
)

// Figure is a stand-in experiment entry point.
func Figure() int { return 0 }
