// Package engine mirrors the real internal/engine: the one layer that
// may import the concrete drivers (layering true negative). The module-
// local imports are blank because the fixture loader resolves them to
// placeholder packages.
package engine

import (
	_ "fixmod/internal/livenet"
	_ "fixmod/internal/sim"
)

// Run is a stand-in for the shared protocol loop.
func Run() int { return 0 }
