package engine

// node is a stand-in for the protocol surface whose error results
// carry conservation state.
type node struct{}

func (node) Absorb(v float64) error { return nil }
func (node) Send(v float64) error   { return nil }
func (node) Flush() error           { return nil }

// encodeFrame is codec-family by prefix; its error is protected too.
func encodeFrame(v float64) ([]byte, error) { return nil, nil }

// relay handles every error: not a finding.
func relay(n node, v float64) error {
	if err := n.Send(v); err != nil {
		return err
	}
	return n.Flush()
}

// drop discards the error by calling for effect.
func drop(n node, v float64) {
	n.Absorb(v) // want errconserve
}

// blank discards through the blank identifier: still a finding.
func blank(n node, v float64) {
	_ = n.Send(v) // want errconserve
}

// multi drops the error half of a multi-value result.
func multi(v float64) []byte {
	b, _ := encodeFrame(v) // want errconserve
	return b
}

// deferred loses the error on the way out of the frame.
func deferred(n node) {
	defer n.Flush() // want errconserve
}

// waived documents why this particular drop is safe.
func waived(n node) {
	//lint:allow errconserve best-effort flush on shutdown; the run's weight is already settled
	_ = n.Flush()
}

// handled keeps the compiler and the rule equally happy.
func handled(n node, v float64) error {
	b, err := encodeFrame(v)
	if err != nil {
		return err
	}
	_ = b
	return n.Absorb(v)
}
