// Package metrics mirrors the real internal/metrics: the one package
// allowed to hold package-level mutable state (globalstate true
// negative).
package metrics

// registry is the process-wide default registry.
var registry = map[string]float64{}

// Set records a value in the default registry.
func Set(name string, v float64) { registry[name] = v }
