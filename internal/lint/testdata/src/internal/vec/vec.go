// Package vec mirrors the real internal/vec: an epsilon-helper package
// where exact float comparison is the implementation (floatcmp true
// negative).
package vec

// Equal reports exact element-wise equality.
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
