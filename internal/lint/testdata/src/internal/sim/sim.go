// Package sim mirrors the real internal/sim: a concrete protocol
// driver that only internal/engine may import (layering).
package sim

// Rounds is a stand-in driver entry point.
func Rounds() int { return 0 }
