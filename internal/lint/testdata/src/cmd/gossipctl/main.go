// Command gossipctl mirrors a command front end: the same layering
// contract as the experiments packages, plus a suppression case.
package main

import (
	_ "fixmod/internal/engine"
	//lint:allow layering fixture for the suppression path of the rule
	_ "fixmod/internal/livenet"
	_ "fixmod/internal/sim" // want layering
)

func main() {}
