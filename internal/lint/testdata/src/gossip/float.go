package gossip

// Spread compares floats exactly: findings.
func Spread(a, b float64, counts []int) bool {
	if a == b { // want floatcmp
		return true
	}
	if b != 0 { // want floatcmp
		return false
	}
	// Integer comparison is fine.
	if len(counts) == 0 {
		return false
	}
	// Both sides constant: evaluated exactly at compile time.
	if 0.1+0.2 == 0.3 {
		return true
	}
	//lint:allow floatcmp IEEE bit-pattern check is intentional here
	return a == 0
}

// near is what the rule steers callers toward.
func near(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Converged uses the epsilon helper: no finding.
func Converged(a, b float64) bool {
	return near(a, b, 1e-9)
}
