// Package gossip is the fixture stand-in for ordinary protocol code:
// every rule applies here in full.
package gossip

import (
	crand "crypto/rand"   //lint:allow norand nonce generation for the wire fixture is not part of a seeded run
	"math/rand"           // want norand
	randv2 "math/rand/v2" // want norand
)

// Draw uses the banned generators so the imports are used.
func Draw() float64 {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return rand.Float64() + randv2.Float64() + float64(b[0])
}
