package gossip

import "errors"

// Stepper is an interface used for the compliance assertion below.
type Stepper interface{ Step() }

type nopStepper struct{}

func (nopStepper) Step() {}

// Package-level mutable state: findings.
var counter int // want globalstate

var (
	registry = map[string]int{} // want globalstate
	limit    float64            // want globalstate
)

// ErrClosed is a sentinel error: exempt by convention.
var ErrClosed = errors.New("gossip: closed")

// Interface-compliance assertion on the blank identifier: exempt.
var _ Stepper = nopStepper{}

//lint:allow globalstate debug hook, set once before main starts
var debugHook func(string)

// Touch uses the globals so they are not unused.
func Touch() {
	counter++
	registry["x"] = counter
	limit = float64(counter)
	if debugHook != nil {
		debugHook("touch")
	}
}
