package gossip

import "testing"

// Test fixtures may hold package-level state: _test.go files are exempt
// from globalstate.
var testFixture = []int{1, 2, 3}

func TestTouch(t *testing.T) {
	Touch()
	if len(testFixture) != 3 {
		t.Fatal("fixture")
	}
}
