package gossip

import (
	"context"
	"sync"
)

// pump runs forever with nothing to stop it: launching it bare leaks.
func pump(ch chan int) {
	for i := 0; ; i++ {
		ch <- i
	}
}

// worker drains until its done channel closes: a shutdown path the
// analyzer can see through the named-function call.
func worker(done chan struct{}, ch chan int) {
	for {
		select {
		case <-done:
			return
		case v := <-ch:
			_ = v
		}
	}
}

// StartLeaky fires pump with no WaitGroup, channel or context.
func StartLeaky(ch chan int) {
	go pump(ch) // want gorolifecycle
}

// StartWorker's goroutine receives from a done channel.
func StartWorker(done chan struct{}, ch chan int) {
	go worker(done, ch)
}

// StartWG uses the wg.Add + deferred Done idiom.
func StartWG(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := range ch {
			_ = v
		}
	}()
}

// StartAdded delegates to an opaque-looking helper, but the preceding
// Add in the same block ties it to a WaitGroup.
func StartAdded(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go pump(ch)
}

// StartCtx ties the goroutine to a context.
func StartCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ch <- 1:
			}
		}
	}()
}

// StartRanger ranges over the quit channel until it closes.
func StartRanger(quit chan struct{}) {
	go func() {
		for range quit {
		}
	}()
}

// StartBounded is fire-and-forget on purpose; the allow documents why.
func StartBounded(ch chan int) {
	//lint:allow gorolifecycle bounded by construction: the harness closes ch and pump panics out in tests
	go pump(ch)
}
