package gossip

import "testing"

// TestExact asserts bit-exact determinism: float == in _test.go files
// is deliberately exempt from floatcmp.
func TestExact(t *testing.T) {
	if Draw() != Draw() {
		t.Log("streams differ")
	}
}
