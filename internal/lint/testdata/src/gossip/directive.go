package gossip

// Malformed suppression: missing the mandatory reason, reported as a
// "directive" finding and suppressing nothing.
func Malformed(a, b float64) bool {
	//lint:allow floatcmp
	return a == b // want floatcmp
}
