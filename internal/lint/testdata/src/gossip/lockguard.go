package gossip

import "sync"

// book has mutex-guarded state under a plain Mutex.
type book struct {
	mu sync.Mutex
	// guarded by mu
	total  float64
	counts []int // guarded by mu
}

// rwbook guards reads with an RWMutex.
type rwbook struct {
	rw sync.RWMutex
	// guarded by rw
	snapshot []float64
}

// embedded carries its guard as an anonymous field.
type embedded struct {
	sync.Mutex
	hits int // guarded by Mutex
}

// badspec names a guard the struct does not have: the annotation
// itself is the finding.
type badspec struct {
	val int // guarded by missing // want lockguard
}

// AddLocked takes the lock before touching guarded state: not a
// finding, including the deferred-unlock form.
func (b *book) AddLocked(v float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total += v
	b.counts = append(b.counts, 1)
}

// AddUnlocked touches guarded state bare.
func (b *book) AddUnlocked(v float64) {
	b.total += v // want lockguard
}

// ReadAfterUnlock releases before the read.
func (b *book) ReadAfterUnlock() float64 {
	b.mu.Lock()
	v := b.total
	b.mu.Unlock()
	return v + b.total // want lockguard
}

// BranchLock acquires only inside a branch; after the branch the lock
// is not provably held.
func (b *book) BranchLock(cond bool) {
	if cond {
		b.mu.Lock()
		b.total = 0
		b.mu.Unlock()
	}
	b.counts = nil // want lockguard
}

// ReadShared reads under RLock: enough for a read on an RWMutex.
func (r *rwbook) ReadShared() int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return len(r.snapshot)
}

// WriteShared writes under RLock: reads may share, writes may not.
func (r *rwbook) WriteShared(v float64) {
	r.rw.RLock()
	defer r.rw.RUnlock()
	r.snapshot = append(r.snapshot, v) // want lockguard
}

// Bump locks through the embedded mutex: not a finding.
func (e *embedded) Bump() {
	e.Lock()
	defer e.Unlock()
	e.hits++
}

// BumpBare skips the embedded lock.
func (e *embedded) BumpBare() {
	e.hits++ // want lockguard
}

// Snapshot reads under the lock inside a loop body: the outer hold
// covers nested blocks, not a finding.
func (b *book) Snapshot() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]int, 0, len(b.counts))
	for _, c := range b.counts {
		out = append(out, c)
	}
	return out
}

// Waived reads bare but is explicitly annotated.
func (b *book) Waived() float64 {
	//lint:allow lockguard constructor-only helper, runs before the book escapes
	return b.total
}

// NewBook builds via composite literal: no receiver access, no
// finding.
func NewBook() *book {
	return &book{counts: make([]int, 0, 4)}
}
