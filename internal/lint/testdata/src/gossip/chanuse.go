package gossip

// feed owns two result channels with annotated closers.
type feed struct {
	// closed by shut
	out chan int
	ack chan struct{} // closed by shut, reset
}

// shut is the annotated owner: closing here is legal.
func (f *feed) shut() {
	close(f.out)
	close(f.ack)
}

// reset shares ownership of ack via the comma list.
func (f *feed) reset() {
	close(f.ack)
}

// drop closes out without being its owner.
func (f *feed) drop() {
	close(f.out) // want chanmisuse
}

// migrate also closes out elsewhere, but the handoff is reviewed.
func (f *feed) migrate() {
	//lint:allow chanmisuse ownership handoff during restart; shut already ran and out was remade
	close(f.out)
}

// SendNil sends on a channel that was never made.
func SendNil() {
	var ch chan int
	ch <- 1 // want chanmisuse
}

// SendMade assigns before sending: definite, not a finding.
func SendMade() {
	ready := make(chan struct{}, 1)
	var ch chan int
	ch = make(chan int, 1)
	ch <- 1
	ready <- struct{}{}
}

// SendBranchy assigns only on one path; the other still sends on nil.
func SendBranchy(ok bool) {
	var ch chan int
	if ok {
		ch = make(chan int, 1)
	}
	ch <- 2 // want chanmisuse
}

// SendEscaped hands the channel's address away: no longer knowable,
// not a finding.
func SendEscaped(fill func(*chan int)) {
	var ch chan int
	fill(&ch)
	ch <- 3
}
