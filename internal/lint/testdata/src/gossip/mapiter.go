package gossip

import (
	"fmt"
	"io"
	"sort"
)

// Fanout leaks map order three ways: append without a sort, a channel
// send, and direct output.
func Fanout(peers map[int]float64, ch chan<- int, w io.Writer) []int {
	var ids []int
	for id, weight := range peers {
		ids = append(ids, id)                 // want mapiter
		ch <- id                              // want mapiter
		fmt.Fprintf(w, "%d %v\n", id, weight) // want mapiter
	}
	return ids
}

// Export appends map keys but sorts before returning: the
// collect-then-sort idiom, not a finding.
func Export(peers map[int]float64) []int {
	var ids []int
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Sum ranges over a map without leaking order: accumulation is
// order-independent, not a finding.
func Sum(peers map[int]float64) float64 {
	var total float64
	for _, w := range peers {
		total += w
	}
	return total
}

// FromSlice appends while ranging over a slice: iteration order is
// deterministic, not a finding.
func FromSlice(vals []int) []int {
	var out []int
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}

// PerKey appends to a slice declared inside the loop body: a fresh
// local per iteration cannot accumulate map order, not a finding.
func PerKey(peers map[int][]int, out map[int][]int) {
	for id, vs := range peers {
		var local []int
		local = append(local, vs...)
		out[id] = local
	}
}

// Broadcast sends in map order but is explicitly waived.
func Broadcast(peers map[int]float64, ch chan<- int) {
	for id := range peers {
		//lint:allow mapiter receiver treats peers as an unordered set
		ch <- id
	}
}

// Builder writes through a Write-family method in map order.
func Builder(peers map[int]float64, w io.StringWriter) {
	for id := range peers {
		_, _ = w.WriteString(fmt.Sprint(id)) // want mapiter
	}
}
