package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLintModuleMatchesRun pins the parallel engine to the serial
// reference: LintModule over the fixture module must produce exactly
// the diagnostics of Load + Run, at any worker count.
func TestLintModuleMatchesRun(t *testing.T) {
	want := loadFixtures(t)
	for _, workers := range []int{1, 4} {
		res, err := LintModule(fixtureRoot, []string{"./..."}, Options{Workers: workers})
		if err != nil {
			t.Fatalf("LintModule(workers=%d): %v", workers, err)
		}
		if res.Module != "fixmod" {
			t.Errorf("module = %q, want fixmod", res.Module)
		}
		if res.Dirs == 0 || res.CacheHits != 0 {
			t.Errorf("dirs = %d, cache hits = %d; want dirs > 0 and no hits without a cache", res.Dirs, res.CacheHits)
		}
		assertSameDiags(t, res.Diagnostics, want)
	}
}

// TestLintModuleCache runs twice against one cache: the second run must
// be served entirely from it, with identical diagnostics.
func TestLintModuleCache(t *testing.T) {
	opts := Options{CacheDir: t.TempDir(), Workers: 4}
	cold, err := LintModule(fixtureRoot, []string{"./..."}, opts)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if cold.CacheHits != 0 {
		t.Errorf("cold run had %d cache hits, want 0", cold.CacheHits)
	}
	warm, err := LintModule(fixtureRoot, []string{"./..."}, opts)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.CacheHits != warm.Dirs {
		t.Errorf("warm run hit %d of %d dirs, want all", warm.CacheHits, warm.Dirs)
	}
	assertSameDiags(t, warm.Diagnostics, cold.Diagnostics)
}

// TestLintModuleCacheInvalidation edits a dependency and checks both
// the edited directory and its importer are re-analyzed: the cache key
// hashes the transitive module-local import closure, not just the
// directory's own files.
func TestLintModuleCacheInvalidation(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.22\n")
	write("a/a.go", "package a\n\nimport _ \"tmpmod/b\"\n\n// A is exported.\nfunc A() int { return 1 }\n")
	write("b/b.go", "package b\n\n// B is exported.\nfunc B() int { return 2 }\n")

	opts := Options{CacheDir: t.TempDir(), Workers: 2}
	if _, err := LintModule(root, []string{"./..."}, opts); err != nil {
		t.Fatalf("prime: %v", err)
	}
	warm, err := LintModule(root, []string{"./..."}, opts)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Dirs != 2 || warm.CacheHits != 2 {
		t.Fatalf("warm: %d hits of %d dirs, want 2 of 2", warm.CacheHits, warm.Dirs)
	}

	// Introduce a norand finding in b: b's own hash changes, and a's
	// closure hash changes with it.
	write("b/b.go", "package b\n\nimport \"math/rand\"\n\n// B is exported.\nfunc B() float64 { return rand.Float64() }\n")
	edited, err := LintModule(root, []string{"./..."}, opts)
	if err != nil {
		t.Fatalf("edited: %v", err)
	}
	if edited.CacheHits != 0 {
		t.Errorf("after editing b, %d dirs were served from cache; want 0 (a depends on b)", edited.CacheHits)
	}
	if len(edited.Diagnostics) != 1 || edited.Diagnostics[0].Rule != "norand" {
		t.Fatalf("edited diagnostics = %v, want one norand finding", edited.Diagnostics)
	}

	// A third run is fully cached again, finding included.
	again, err := LintModule(root, []string{"./..."}, opts)
	if err != nil {
		t.Fatalf("again: %v", err)
	}
	if again.CacheHits != 2 {
		t.Errorf("re-run after edit hit %d of 2 dirs, want 2", again.CacheHits)
	}
	assertSameDiags(t, again.Diagnostics, edited.Diagnostics)
}

// assertSameDiags compares two diagnostic lists by rendered form.
func assertSameDiags(t *testing.T, got, want []Diagnostic) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d\ngot: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Errorf("diagnostic %d:\ngot  %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestRunAllows checks usage tracking: the fixture allows are all used
// (TestAnalyzers enforces a suppression case per rule), and a freshly
// added directive that suppresses nothing reports stale.
func TestRunAllows(t *testing.T) {
	units, err := Load(fixtureRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	allows := RunAllows(units, All())
	if len(allows) == 0 {
		t.Fatal("no allows found in fixtures")
	}
	byRule := make(map[string]bool)
	for _, a := range allows {
		if !a.Used {
			t.Errorf("fixture allow reported stale: %s:%d %s (%s)", a.Pos.Filename, a.Pos.Line, a.Rule, a.Reason)
		}
		byRule[a.Rule] = true
	}
	for _, rule := range []string{"lockguard", "gorolifecycle", "errconserve", "chanmisuse"} {
		if !byRule[rule] {
			t.Errorf("no allow directive for %s in fixtures", rule)
		}
	}
}

// TestRunAllowsStale checks a directive with no matching finding is
// reported unused.
func TestRunAllowsStale(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "package p\n\n// Two adds two.\nfunc Two() int {\n\t//lint:allow norand nothing random here at all\n\treturn 2\n}\n"
	if err := os.MkdirAll(filepath.Join(root, "p"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "p", "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	units, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	allows := RunAllows(units, All())
	if len(allows) != 1 {
		t.Fatalf("got %d allows, want 1: %v", len(allows), allows)
	}
	if allows[0].Used {
		t.Errorf("allow with no finding reported used: %+v", allows[0])
	}
	if allows[0].Rule != "norand" || allows[0].Reason != "nothing random here at all" {
		t.Errorf("allow fields wrong: %+v", allows[0])
	}
}
