package lint

import (
	"go/token"
	"sort"
)

// Allow is one well-formed //lint:allow directive, annotated with
// whether the current analysis actually needed it. A stale allow
// (Used == false) is a suppression whose finding no longer exists —
// the code was fixed or the rule changed — and should be deleted so
// the escape hatch stays an accurate map of the reviewed exceptions.
type Allow struct {
	Pos    token.Position
	Rule   string
	Reason string
	Used   bool
}

// RunAllows runs the analyzers over the units like Run, but instead of
// returning the surviving findings it returns every //lint:allow
// directive with its usage: a directive is Used when at least one raw
// finding of its rule landed on its line (trailing form) or the line
// below (standalone form). Malformed directives are not included; Run
// already reports those as findings.
func RunAllows(units []*Unit, analyzers []Analyzer) []Allow {
	var allows []Allow
	for _, u := range units {
		perFile := make(map[string]map[int][]directive)
		for _, f := range u.Files {
			ds, _ := directives(u.Fset, f)
			perFile[u.Fset.Position(f.Pos()).Filename] = ds
		}
		used := make(map[string]map[int]map[string]bool) // file -> directive line -> rule
		mark := func(file string, line int, rule string) {
			if used[file] == nil {
				used[file] = make(map[int]map[string]bool)
			}
			if used[file][line] == nil {
				used[file][line] = make(map[string]bool)
			}
			used[file][line][rule] = true
		}
		for _, a := range analyzers {
			for _, d := range a.Check(u) {
				byLine := perFile[d.Pos.Filename]
				for _, dir := range byLine[d.Pos.Line] {
					if dir.rule == a.Name() {
						mark(d.Pos.Filename, dir.line, dir.rule)
					}
				}
				for _, dir := range byLine[d.Pos.Line-1] {
					if dir.rule == a.Name() && dir.standalone {
						mark(d.Pos.Filename, dir.line, dir.rule)
					}
				}
			}
		}
		for file, byLine := range perFile {
			for line, ds := range byLine {
				for _, dir := range ds {
					//lint:allow mapiter the combined slice is position-sorted before return
					allows = append(allows, Allow{
						Pos:    token.Position{Filename: file, Line: line},
						Rule:   dir.rule,
						Reason: dir.reason,
						Used:   used[file][line][dir.rule],
					})
				}
			}
		}
	}
	sort.Slice(allows, func(i, j int) bool {
		a, b := allows[i], allows[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return allows
}
