package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureRoot is a miniature module mirroring the real repo's layout:
// the directories the rules special-case (internal/rng, internal/vec,
// internal/metrics, internal/core) plus an ordinary package ("gossip")
// where every rule applies. Expected findings are annotated in the
// fixtures themselves with trailing `// want <rule>` comments.
const fixtureRoot = "testdata/src"

// wantRe matches a finding annotation in a fixture file.
var wantRe = regexp.MustCompile(`// want ([a-z]+)$`)

// fixtureLoad caches the one fixture analysis all tests share: loading
// re-type-checks the stdlib through the source importer, which is too
// slow to repeat per test function.
var fixtureLoad struct {
	once  sync.Once
	diags []Diagnostic
	errs  []string
}

// loadFixtures loads and analyzes the fixture module once per test run.
func loadFixtures(t *testing.T) []Diagnostic {
	t.Helper()
	fixtureLoad.once.Do(func() {
		units, err := Load(fixtureRoot, []string{"./..."})
		if err != nil {
			fixtureLoad.errs = append(fixtureLoad.errs, fmt.Sprintf("Load: %v", err))
			return
		}
		if len(units) == 0 {
			fixtureLoad.errs = append(fixtureLoad.errs, "Load returned no units")
			return
		}
		for _, u := range units {
			for _, terr := range u.TypeErrors {
				fixtureLoad.errs = append(fixtureLoad.errs,
					fmt.Sprintf("fixture type error (fixtures must compile): %v", terr))
			}
		}
		fixtureLoad.diags = Run(units, All())
	})
	for _, msg := range fixtureLoad.errs {
		t.Error(msg)
	}
	if t.Failed() {
		t.FailNow()
	}
	return fixtureLoad.diags
}

// wantFindings scans the fixture tree for `// want <rule>` annotations
// and returns the expected "file:line" set per rule.
func wantFindings(t *testing.T) map[string]map[string]bool {
	t.Helper()
	want := make(map[string]map[string]bool)
	err := filepath.WalkDir(fixtureRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(strings.TrimRight(sc.Text(), " \t"))
			if m == nil {
				continue
			}
			rel, err := filepath.Rel(fixtureRoot, path)
			if err != nil {
				return err
			}
			key := fmt.Sprintf("%s:%d", filepath.ToSlash(rel), line)
			if want[m[1]] == nil {
				want[m[1]] = make(map[string]bool)
			}
			want[m[1]][key] = true
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return want
}

// TestAnalyzers checks every analyzer against the fixture module: each
// annotated line must be reported (true positives), nothing else may be
// reported (true negatives and //lint:allow suppressions), and each rule
// must have at least one positive and one suppression fixture.
func TestAnalyzers(t *testing.T) {
	diags := loadFixtures(t)
	want := wantFindings(t)

	got := make(map[string]map[string]bool)
	for _, d := range diags {
		rel, err := filepath.Rel(fixtureRoot, d.Pos.Filename)
		if err != nil {
			t.Fatalf("diagnostic outside fixture root: %v", d)
		}
		key := fmt.Sprintf("%s:%d", filepath.ToSlash(rel), d.Pos.Line)
		if got[d.Rule] == nil {
			got[d.Rule] = make(map[string]bool)
		}
		got[d.Rule][key] = true
	}

	for _, a := range All() {
		rule := a.Name()
		t.Run(rule, func(t *testing.T) {
			if len(want[rule]) == 0 {
				t.Fatalf("no // want %s annotations in fixtures; every rule needs positive coverage", rule)
			}
			for key := range want[rule] {
				if !got[rule][key] {
					t.Errorf("missing finding %s at %s", rule, key)
				}
			}
			for key := range got[rule] {
				if !want[rule][key] {
					t.Errorf("unexpected finding %s at %s", rule, key)
				}
			}
			if !fixtureHasAllow(t, rule) {
				t.Errorf("fixtures have no //lint:allow %s suppression case", rule)
			}
		})
	}
}

// fixtureHasAllow reports whether some fixture file contains a
// well-formed //lint:allow for the rule.
func fixtureHasAllow(t *testing.T, rule string) bool {
	t.Helper()
	re := regexp.MustCompile(`//lint:allow ` + rule + ` \S`)
	found := false
	err := filepath.WalkDir(fixtureRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if re.Match(data) {
			found = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return found
}

// TestMalformedDirective checks that an allow without a reason is
// reported and suppresses nothing (the floatcmp finding on the next
// line must survive; asserted by TestAnalyzers' want annotations).
func TestMalformedDirective(t *testing.T) {
	diags := loadFixtures(t)
	var inDirectiveFixture []Diagnostic
	for _, d := range diags {
		if d.Rule == "directive" {
			if filepath.Base(d.Pos.Filename) != "directive.go" {
				t.Errorf("directive finding outside directive.go: %v", d)
			}
			inDirectiveFixture = append(inDirectiveFixture, d)
		}
	}
	if len(inDirectiveFixture) != 1 {
		t.Fatalf("got %d malformed-directive findings, want 1: %v", len(inDirectiveFixture), inDirectiveFixture)
	}
}

// TestDiagnosticString pins the file:line:col rendering CI greps for.
func TestDiagnosticString(t *testing.T) {
	diags := loadFixtures(t)
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[0].String()
	re := regexp.MustCompile(`^.+\.go:\d+:\d+: [a-z]+: .+$`)
	if !re.MatchString(s) {
		t.Errorf("diagnostic %q does not match file:line:col: rule: message", s)
	}
}

// TestRunSorted checks Run returns diagnostics in position order.
func TestRunSorted(t *testing.T) {
	diags := loadFixtures(t)
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics out of order: %v before %v", a, b)
		}
	}
}
