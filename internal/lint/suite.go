package lint

import (
	"crypto/sha256"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"sync"
)

// Options configures LintModule.
type Options struct {
	// Analyzers is the rule set to run; nil means All().
	Analyzers []Analyzer
	// CacheDir enables the content-hash diagnostic cache when non-empty:
	// a directory whose files (and transitive module-local imports) are
	// unchanged since a previous run with the same analyzer set and
	// toolchain is served from disk without type-checking.
	CacheDir string
	// Workers bounds the type-checking concurrency; <= 0 means
	// GOMAXPROCS.
	Workers int
}

// Result is the outcome of a LintModule run.
type Result struct {
	// Module is the module path from go.mod.
	Module string
	// Diagnostics are the surviving findings, sorted by position.
	Diagnostics []Diagnostic
	// Dirs is the number of package directories analyzed.
	Dirs int
	// CacheHits counts directories served from the diagnostic cache.
	CacheHits int
}

// LintModule is the parallel, incrementally cached front end over the
// suite: it expands patterns to package directories, hashes each
// directory (contents plus transitive module-local imports), serves
// unchanged directories from the cache, and type-checks the rest
// concurrently across a worker pool. The per-directory results are
// identical to a serial Load + Run over the same patterns.
func LintModule(root string, patterns []string, opts Options) (*Result, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}

	var cache *diagCache
	if opts.CacheDir != "" {
		cache, err = openCache(opts.CacheDir)
		if err != nil {
			return nil, err
		}
	}

	// Hash every selected directory up front: the closure hash of a
	// directory needs the state of the directories it imports, whether
	// or not those were selected by the patterns.
	keys := make([]string, len(dirs))
	if cache != nil {
		states := make(map[string]*dirState, len(dirs))
		for _, dir := range dirs {
			st, err := scanDir(root, module, dir)
			if err != nil {
				return nil, fmt.Errorf("lint: hashing %s: %w", dir, err)
			}
			states[st.rel] = st
		}
		// Imported directories outside the selected set still influence
		// dependents; hash them on demand. An unreadable dependency
		// simply contributes an empty hash.
		var ensure func(rel string)
		ensure = func(rel string) {
			if states[rel] != nil {
				return
			}
			st, err := scanDir(root, module, filepath.Join(root, filepath.FromSlash(rel)))
			if err != nil || st == nil {
				return
			}
			states[rel] = st
			for _, imp := range st.imports {
				ensure(imp)
			}
		}
		for _, dir := range dirs {
			rel := relOf(root, dir)
			for _, imp := range states[rel].imports {
				ensure(imp)
			}
		}
		memo := make(map[string][sha256.Size]byte)
		for i, dir := range dirs {
			rel := relOf(root, dir)
			closure := closureHash(rel, states, memo, make(map[string]bool))
			keys[i] = cacheKey(root, module, rel, analyzers, closure)
		}
	}

	fset := token.NewFileSet()
	imp := &lockedImporter{imp: &moduleFallbackImporter{
		imp:    importer.ForCompiler(fset, "source", nil),
		module: module,
		cache:  make(map[string]*types.Package),
	}}

	perDir := make([][]Diagnostic, len(dirs))
	hits := make([]bool, len(dirs))
	errs := make([]error, len(dirs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, dir := range dirs {
		if cache != nil {
			if diags, ok := cache.get(keys[i]); ok {
				perDir[i] = diags
				hits[i] = true
				continue
			}
		}
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			units, err := loadDir(fset, imp, root, module, dir)
			if err != nil {
				errs[i] = err
				return
			}
			diags := Run(units, analyzers)
			perDir[i] = diags
			if cache != nil {
				// A failed write only costs the next run a recheck.
				_ = cache.put(keys[i], diags)
			}
		}(i, dir)
	}
	wg.Wait()

	res := &Result{Module: module, Dirs: len(dirs)}
	for i := range dirs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if hits[i] {
			res.CacheHits++
		}
		res.Diagnostics = append(res.Diagnostics, perDir[i]...)
	}
	sortDiagnostics(res.Diagnostics)
	return res, nil
}

// relOf returns dir relative to root in slash form ("." for the root).
func relOf(root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return filepath.ToSlash(dir)
	}
	return filepath.ToSlash(rel)
}

// lockedImporter serializes a non-thread-safe importer so concurrent
// type-checking goroutines can share one (the source importer caches
// each package after its first import, so contention fades quickly).
type lockedImporter struct {
	mu  sync.Mutex
	imp types.ImporterFrom
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, ".", 0)
}

func (l *lockedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.ImportFrom(path, dir, mode)
}
