package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// conserveDirs are the packages where a dropped error is dropped
// weight: the protocol loop, the wire transport and the node itself.
//
//lint:allow globalstate immutable rule table, written only at init
var conserveDirs = map[string]bool{
	"internal/core":    true,
	"internal/engine":  true,
	"internal/livenet": true,
}

// conserveNames are the call names whose error results the rule
// protects: the send/encode/absorb family. Matching is by the final
// selector (method or function) name; only calls whose last result is
// an error are considered.
//
//lint:allow globalstate immutable rule table, written only at init
var conserveExact = map[string]bool{
	"absorb":        true,
	"deliver":       true,
	"undeliverable": true,
	"send":          true,
	"split":         true,
	"flush":         true,
}

// conservePrefixes extends the name match to the codec and I/O
// families (MarshalClassification, writeFrame, EncodeTo, ...).
//
//lint:allow globalstate immutable rule table, written only at init
var conservePrefixes = []string{"marshal", "unmarshal", "encode", "decode", "write", "read"}

// ErrConserve reports ignored error returns on conservation-critical
// paths in internal/core, internal/engine and internal/livenet. The
// protocol's invariant is that weight only moves inside a checked
// split→send→absorb exchange; an error dropped on one of those paths
// is weight silently created or destroyed. Both forms of discarding
// are findings — calling for effect (`n.Absorb(cls)` as a statement)
// and the explicit blank assignment (`_ = n.Absorb(cls)`): the blank
// form must carry a //lint:allow with the argument for why the error
// is genuinely ignorable. _test.go files are exempt.
type ErrConserve struct{}

// Name implements Analyzer.
func (ErrConserve) Name() string { return "errconserve" }

// Doc implements Analyzer.
func (ErrConserve) Doc() string {
	return "in core/engine/livenet, an ignored error from a send/encode/absorb path is dropped weight"
}

// Check implements Analyzer.
func (ErrConserve) Check(u *Unit) []Diagnostic {
	if !conserveDirs[u.Rel] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range u.Files {
		if u.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if name, ok := u.conserveCall(call); ok {
						diags = append(diags, conserveDiag(u, call, name, "discarded"))
					}
					return false // statement call handled; don't re-visit as expression
				}
			case *ast.AssignStmt:
				diags = append(diags, u.conserveBlankAssigns(s)...)
			case *ast.GoStmt, *ast.DeferStmt:
				// go/defer of a conservation call also drops the error.
				var call *ast.CallExpr
				if gs, ok := s.(*ast.GoStmt); ok {
					call = gs.Call
				} else {
					call = s.(*ast.DeferStmt).Call
				}
				if name, ok := u.conserveCall(call); ok {
					diags = append(diags, conserveDiag(u, call, name, "discarded"))
				}
			}
			return true
		})
	}
	return diags
}

// conserveBlankAssigns reports conservation calls whose error result
// lands on the blank identifier.
func (u *Unit) conserveBlankAssigns(s *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// x, err := f() — multi-value call; the error is the last LHS.
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		if name, ok := u.conserveCall(call); ok && isBlank(s.Lhs[len(s.Lhs)-1]) {
			diags = append(diags, conserveDiag(u, call, name, "assigned to _"))
		}
		return diags
	}
	for i, rhs := range s.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || i >= len(s.Lhs) || !isBlank(s.Lhs[i]) {
			continue
		}
		if name, ok := u.conserveCall(call); ok {
			diags = append(diags, conserveDiag(u, call, name, "assigned to _"))
		}
	}
	return diags
}

// conserveCall reports whether the call is a conservation-critical
// call whose last result is an error, returning the callee name.
func (u *Unit) conserveCall(call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	if !conserveName(id.Name) {
		return "", false
	}
	obj := u.Info.Uses[id]
	if obj == nil {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	return id.Name, true
}

// conserveName matches the protected send/encode/absorb name family.
func conserveName(name string) bool {
	lower := strings.ToLower(name)
	if conserveExact[lower] {
		return true
	}
	for _, p := range conservePrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

func conserveDiag(u *Unit, call *ast.CallExpr, name, how string) Diagnostic {
	return Diagnostic{
		Pos:     u.Fset.Position(call.Pos()),
		Rule:    "errconserve",
		Message: "error from " + name + " " + how + " on a conservation-critical path; handle it or annotate why dropped weight is impossible here",
	}
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}
