package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// metricsDir is the one package allowed to hold package-level mutable
// state: its registry exists precisely to be the process-wide sink, and
// it is concurrency-safe by construction.
const metricsDir = "internal/metrics"

// GlobalState reports package-level var declarations outside
// internal/metrics. Hidden package state couples runs to process
// history — the opposite of "reproducible from the seed" — and is the
// usual source of data races once nodes become goroutines. Sentinel
// errors are exempt (the ErrFoo convention is de-facto immutable), as
// are blank-identifier interface-compliance assertions.
//
// Test files are exempt: per-test fixtures in _test.go files don't ship,
// and the race gate covers their concurrency.
type GlobalState struct{}

// Name implements Analyzer.
func (GlobalState) Name() string { return "globalstate" }

// Doc implements Analyzer.
func (GlobalState) Doc() string {
	return "no package-level mutable state outside the internal/metrics registry; inject dependencies explicitly"
}

// Check implements Analyzer.
func (GlobalState) Check(u *Unit) []Diagnostic {
	if u.InDir(metricsDir) {
		return nil
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var diags []Diagnostic
	for _, f := range u.Files {
		if u.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := u.Info.Defs[name]
					if obj != nil && types.Implements(obj.Type(), errIface) {
						continue
					}
					diags = append(diags, Diagnostic{
						Pos:     u.Fset.Position(name.Pos()),
						Rule:    "globalstate",
						Message: "package-level var " + name.Name + " outside internal/metrics; pass state through constructors or config",
					})
				}
			}
		}
	}
	return diags
}
