package lint

import "strconv"

// rngDir is the one directory allowed to import the standard library's
// random number generators: it wraps them behind the explicitly seeded
// RNG every stochastic component receives.
const rngDir = "internal/rng"

// randImports are the import paths NoRand bans. crypto/rand is included
// deliberately: even "harmless" nonce generation makes a run
// irreproducible from its seed.
//
//lint:allow globalstate immutable rule table, written only at init
var randImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// NoRand reports imports of math/rand, math/rand/v2 or crypto/rand
// anywhere outside internal/rng. Randomness must flow through an
// explicitly seeded *rng.RNG so every run is reproducible from its seed
// (DESIGN.md, determinism contract).
type NoRand struct{}

// Name implements Analyzer.
func (NoRand) Name() string { return "norand" }

// Doc implements Analyzer.
func (NoRand) Doc() string {
	return "stdlib randomness may only be imported by internal/rng; everything else seeds through *rng.RNG"
}

// Check implements Analyzer.
func (NoRand) Check(u *Unit) []Diagnostic {
	if u.InDir(rngDir) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !randImports[path] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:     u.Fset.Position(imp.Pos()),
				Rule:    "norand",
				Message: "import of " + path + " outside internal/rng; draw from an explicitly seeded *rng.RNG instead",
			})
		}
	}
	return diags
}
