package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// cacheVersion is baked into every cache key; bump it whenever the
// diagnostic encoding or the meaning of a key changes.
const cacheVersion = "distclass-lint-cache-v1"

// diagCache is a content-addressed store of per-directory diagnostic
// lists. An entry is valid forever: the key already encodes everything
// the diagnostics depend on (file contents of the directory and its
// transitive module-local imports, the analyzer set, the toolchain and
// the module identity), so invalidation is simply a key miss.
type diagCache struct {
	dir string
}

// openCache creates the cache directory if needed.
func openCache(dir string) (*diagCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lint: cache: %w", err)
	}
	return &diagCache{dir: dir}, nil
}

// cacheEntry is the on-disk JSON payload.
type cacheEntry struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// get returns the cached diagnostics for key, or ok=false on any miss
// or decode failure (a corrupt entry is treated as absent).
func (c *diagCache) get(key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	return e.Diagnostics, true
}

// put stores diagnostics under key, atomically (temp file + rename) so
// concurrent writers and readers never see a torn entry.
func (c *diagCache) put(key string, diags []Diagnostic) error {
	data, err := json.Marshal(cacheEntry{Diagnostics: diags})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(c.dir, key+".json"))
}

// dirState is the hashed identity of one directory: its own file
// contents plus the module-local directories it imports. Computed once
// per directory per run, before any type checking.
type dirState struct {
	dir     string
	rel     string
	own     [sha256.Size]byte
	imports []string // module-relative dirs this dir imports
}

// scanDir reads and hashes every Go file in dir and extracts its
// module-local imports with an imports-only parse. The hash covers file
// names and contents, so adding, removing, renaming or editing a file
// all change it.
func scanDir(root, module, dir string) (*dirState, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && goFileName(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	h := sha256.New()
	importSet := make(map[string]bool)
	fset := token.NewFileSet()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
		h.Write(data)
		f, err := parser.ParseFile(fset, name, data, parser.ImportsOnly)
		if err != nil {
			// Unparseable files still hash; the full load will report.
			continue
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == module {
				importSet["."] = true
			} else if rest, ok := strings.CutPrefix(path, module+"/"); ok {
				importSet[rest] = true
			}
		}
	}

	st := &dirState{dir: dir, rel: rel}
	h.Sum(st.own[:0])
	for imp := range importSet {
		if imp != rel {
			//lint:allow mapiter sorted immediately below
			st.imports = append(st.imports, imp)
		}
	}
	sort.Strings(st.imports)
	return st, nil
}

// closureHash combines a directory's own hash with the closure hashes
// of its module-local imports, so editing a dependency invalidates
// every dependent directory. memo carries results across the
// per-directory recursion; visiting guards against import cycles (the
// compiler rejects them, but a half-edited tree may contain one — the
// back edge simply contributes nothing).
func closureHash(rel string, states map[string]*dirState, memo map[string][sha256.Size]byte, visiting map[string]bool) [sha256.Size]byte {
	if h, ok := memo[rel]; ok {
		return h
	}
	st := states[rel]
	if st == nil || visiting[rel] {
		return [sha256.Size]byte{}
	}
	visiting[rel] = true
	h := sha256.New()
	h.Write(st.own[:])
	for _, imp := range st.imports {
		dep := closureHash(imp, states, memo, visiting)
		fmt.Fprintf(h, "%s\x00", imp)
		h.Write(dep[:])
	}
	delete(visiting, rel)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	memo[rel] = out
	return out
}

// cacheKey derives the storage key for one directory's diagnostics.
// Everything the cached result depends on is folded in: schema version,
// toolchain, module path, the absolute root (diagnostic positions embed
// it), the analyzer set, and the directory's closure hash.
func cacheKey(root, module, rel string, analyzers []Analyzer, closure [sha256.Size]byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%s\x00", cacheVersion, runtime.Version(), module, root, rel)
	for _, a := range analyzers {
		fmt.Fprintf(h, "%s\x00", a.Name())
	}
	h.Write(closure[:])
	return hex.EncodeToString(h.Sum(nil))
}
