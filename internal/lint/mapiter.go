package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter reports `range` over a map whose body leaks the iteration
// order: appending to a slice, sending on a channel, or writing output.
// Go randomizes map iteration order per run, so any of these turns into
// nondeterministic gossip fan-out, snapshot export or log output — the
// classic reproducibility bug in this codebase's domain.
//
// Appends are not reported when a later statement in the same block
// sorts the destination slice (the collect-then-sort idiom); sends and
// writes have no such repair and must be restructured or annotated.
type MapIter struct{}

// Name implements Analyzer.
func (MapIter) Name() string { return "mapiter" }

// Doc implements Analyzer.
func (MapIter) Doc() string {
	return "map iteration must not leak its order into slices, channels or output without a sort"
}

// leak is one order-dependent effect found in a range-over-map body.
type leak struct {
	pos  ast.Node
	what string
	// target is the destination slice identifier for append leaks; nil
	// when the destination is not a plain identifier or the leak is
	// not an append.
	target *ast.Ident
}

// Check implements Analyzer.
func (MapIter) Check(u *Unit) []Diagnostic {
	var diags []Diagnostic
	for _, f := range u.Files {
		inspectStmtLists(f, func(list []ast.Stmt) {
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !u.isMap(rs.X) {
					continue
				}
				for _, l := range u.findLeaks(rs.Body) {
					if l.target != nil && u.loopLocal(rs.Body, l.target) {
						continue // fresh slice per iteration; no order leak
					}
					if l.target != nil && sortedLater(u, list[i+1:], l.target.Name) {
						continue
					}
					diags = append(diags, Diagnostic{
						Pos:     u.Fset.Position(l.pos.Pos()),
						Rule:    "mapiter",
						Message: l.what + " inside range over map leaks iteration order; collect keys and sort, or sort the result",
					})
				}
			}
		})
	}
	return diags
}

// isMap reports whether expr has map type.
func (u *Unit) isMap(expr ast.Expr) bool {
	tv, ok := u.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// findLeaks scans a range body for order-dependent effects.
func (u *Unit) findLeaks(body *ast.BlockStmt) []leak {
	var leaks []leak
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			leaks = append(leaks, leak{pos: n, what: "channel send"})
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !u.isBuiltinAppend(call.Fun) {
					continue
				}
				l := leak{pos: n, what: "append"}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						l.target = id
					}
				}
				leaks = append(leaks, l)
			}
		case *ast.CallExpr:
			if what, ok := u.isOutputCall(n); ok {
				leaks = append(leaks, leak{pos: n, what: what})
			}
		}
		return true
	})
	return leaks
}

// loopLocal reports whether the identifier's variable is declared
// inside the range body: a slice created fresh each iteration cannot
// accumulate the map's order.
func (u *Unit) loopLocal(body *ast.BlockStmt, id *ast.Ident) bool {
	obj := u.Info.Uses[id]
	if obj == nil {
		obj = u.Info.Defs[id]
	}
	return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End()
}

// isBuiltinAppend reports whether fun is the append builtin.
func (u *Unit) isBuiltinAppend(fun ast.Expr) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := u.Info.Uses[id].(*types.Builtin)
	return builtin
}

// isOutputCall recognizes calls that emit bytes in call order: the fmt
// printers and Write-family methods (io.Writer, strings.Builder,
// bytes.Buffer, bufio.Writer, ...).
func (u *Unit) isOutputCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := u.Info.Uses[id].(*types.PkgName); ok {
			if pkg.Imported().Path() == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				return "fmt." + name, true
			}
			return "", false // other package-level calls are not output
		}
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return "." + name, true
	}
	return "", false
}

// sortedLater reports whether a subsequent statement in the same block
// passes the named slice to a sort or slices call.
func sortedLater(u *Unit, rest []ast.Stmt, target string) bool {
	for _, stmt := range rest {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		pkg, ok := u.Info.Uses[id].(*types.PkgName)
		if !ok {
			continue
		}
		if p := pkg.Imported().Path(); p != "sort" && p != "slices" {
			continue
		}
		if mentions(call, target) {
			return true
		}
	}
	return false
}

// mentions reports whether the expression references an identifier with
// the given name.
func mentions(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// inspectStmtLists calls fn on every statement list in the file: block
// bodies, switch cases and select clauses.
func inspectStmtLists(f *ast.File, fn func([]ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}
