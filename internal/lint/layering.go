package lint

import (
	"strconv"
	"strings"
)

// layeredDirs are the directories that must stay transport-agnostic:
// experiment harnesses and command front ends drive the protocol
// exclusively through internal/engine, which owns backend selection
// and capability validation. A direct driver import re-couples the
// layer to one transport and silently bypasses the -backend contract.
//
//lint:allow globalstate immutable rule table, written only at init
var layeredDirs = []string{"internal/experiments", "cmd"}

// driverDirs are the concrete protocol drivers the layered directories
// may not import directly.
//
//lint:allow globalstate immutable rule table, written only at init
var driverDirs = []string{"internal/sim", "internal/livenet"}

// Layering reports direct imports of internal/sim or internal/livenet
// from packages under internal/experiments or cmd — those layers must
// reach the protocol through internal/engine's Transport abstraction.
type Layering struct{}

// Name implements Analyzer.
func (Layering) Name() string { return "layering" }

// Doc implements Analyzer.
func (Layering) Doc() string {
	return "experiments and cmd packages drive the protocol through internal/engine, never internal/sim or internal/livenet directly"
}

// Check implements Analyzer.
func (Layering) Check(u *Unit) []Diagnostic {
	if !inAnyDir(u.Rel, layeredDirs) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, dir := range driverDirs {
				if path != u.Module+"/"+dir {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:     u.Fset.Position(imp.Pos()),
					Rule:    "layering",
					Message: "import of " + path + " from " + u.Rel + "; drive the protocol through internal/engine instead",
				})
			}
		}
	}
	return diags
}

// inAnyDir reports whether rel is one of the directories or nested
// under one of them.
func inAnyDir(rel string, dirs []string) bool {
	for _, d := range dirs {
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}
