package lint

import (
	"go/ast"
	"go/types"
)

// deterministicDirs are the packages that must be reproducible from a
// seed alone: the protocol core and everything the paper's figures are
// computed from. They run on the simulator's virtual clock; reading the
// wall clock there makes schedules (and therefore gossip outcomes)
// machine-dependent. livenet and metrics are real-time by design and
// deliberately not listed.
//
//lint:allow globalstate immutable rule table, written only at init
var deterministicDirs = map[string]bool{
	"internal/core":        true,
	"internal/sim":         true,
	"internal/experiments": true,
	"internal/em":          true,
	"internal/centroids":   true,
	"internal/gm":          true,
}

// wallClockFuncs are the time package entry points that observe or wait
// on the wall clock. Pure constructors like time.Duration arithmetic
// remain fine.
//
//lint:allow globalstate immutable rule table, written only at init
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// NoWallClock reports wall-clock reads (time.Now, time.Sleep,
// time.Since, ...) inside the deterministic packages, where all timing
// must come from the simulator's virtual clock.
type NoWallClock struct{}

// Name implements Analyzer.
func (NoWallClock) Name() string { return "nowallclock" }

// Doc implements Analyzer.
func (NoWallClock) Doc() string {
	return "deterministic packages (core, sim, experiments, em, centroids, gm) use virtual time, never the wall clock"
}

// Check implements Analyzer.
func (NoWallClock) Check(u *Unit) []Diagnostic {
	if !deterministicDirs[u.Rel] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := u.Info.Uses[id].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "time" {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:     u.Fset.Position(sel.Pos()),
				Rule:    "nowallclock",
				Message: "time." + sel.Sel.Name + " in deterministic package " + u.Rel + "; use the simulator's virtual clock",
			})
			return true
		})
	}
	return diags
}
