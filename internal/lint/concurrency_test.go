package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// lintModuleFiles lays out a throwaway module, analyzes it with the
// full suite, and returns the findings for one rule.
func lintModuleFiles(t *testing.T, rule string, files map[string]string) []Diagnostic {
	t.Helper()
	root := t.TempDir()
	all := map[string]string{"go.mod": "module tmpmod\n\ngo 1.22\n"}
	for k, v := range files {
		all[k] = v
	}
	for name, src := range all {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	units, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		for _, terr := range u.TypeErrors {
			t.Fatalf("test module must type-check: %v", terr)
		}
	}
	var out []Diagnostic
	for _, d := range Run(units, All()) {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// TestLockGuardEmbeddedDefer pins the embedded-mutex idiom: locking
// through the promoted Lock with a deferred Unlock holds to function
// end, and the same access without the lock is a finding.
func TestLockGuardEmbeddedDefer(t *testing.T) {
	diags := lintModuleFiles(t, "lockguard", map[string]string{
		"p/p.go": `package p

import "sync"

type counter struct {
	sync.Mutex
	n int // guarded by Mutex
}

// Inc holds the embedded lock for the whole body.
func (c *counter) Inc() {
	c.Lock()
	defer c.Unlock()
	c.n++
}

// Peek reads without the lock.
func (c *counter) Peek() int {
	return c.n
}
`,
	})
	if len(diags) != 1 {
		t.Fatalf("got %d lockguard findings, want 1 (Peek only): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 19 {
		t.Errorf("finding at line %d, want 19 (the unlocked read in Peek): %v", diags[0].Pos.Line, diags[0])
	}
}

// TestLockGuardDeferredUnlockHolds pins that `mu.Lock(); defer
// mu.Unlock()` keeps the lock held past later statements — the defer
// must not be read as an immediate unlock.
func TestLockGuardDeferredUnlockHolds(t *testing.T) {
	diags := lintModuleFiles(t, "lockguard", map[string]string{
		"p/p.go": `package p

import "sync"

type box struct {
	mu sync.Mutex
	v  int // guarded by mu
}

// Set touches v repeatedly after the deferred unlock is queued.
func (b *box) Set(x int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.v = x
	b.v++
	return b.v
}
`,
	})
	if len(diags) != 0 {
		t.Fatalf("deferred unlock misread as release: %v", diags)
	}
}

// TestGoroLifecycleOnceConstructor pins goroutines launched inside a
// sync.Once constructor: starting a background loop under once.Do is
// still a leak unless the loop has a shutdown path.
func TestGoroLifecycleOnceConstructor(t *testing.T) {
	diags := lintModuleFiles(t, "gorolifecycle", map[string]string{
		"p/p.go": `package p

import "sync"

type server struct {
	once sync.Once
	quit chan struct{}
	work chan int
}

func (s *server) loopForever() {
	for {
		s.work <- 1
	}
}

func (s *server) loopUntilQuit() {
	for {
		select {
		case <-s.quit:
			return
		case s.work <- 1:
		}
	}
}

// StartLeaky lazily fires an unstoppable loop.
func (s *server) StartLeaky() {
	s.once.Do(func() {
		go s.loopForever()
	})
}

// StartTied lazily fires a loop the quit channel can end.
func (s *server) StartTied() {
	s.once.Do(func() {
		go s.loopUntilQuit()
	})
}
`,
	})
	if len(diags) != 1 {
		t.Fatalf("got %d gorolifecycle findings, want 1 (StartLeaky only): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 30 {
		t.Errorf("finding at line %d, want 30 (go s.loopForever in StartLeaky): %v", diags[0].Pos.Line, diags[0])
	}
}

// TestErrConserveBlankDiscard pins the satellite requirement: in a
// conservation-critical package, `_ = f()` is a finding exactly like
// calling for effect, and only an explicit //lint:allow clears it.
func TestErrConserveBlankDiscard(t *testing.T) {
	src := func(body string) map[string]string {
		return map[string]string{
			"internal/engine/e.go": `package engine

type tr struct{}

func (tr) Send(v float64) error { return nil }

func f(x tr) {
` + body + `}
`,
		}
	}

	bare := lintModuleFiles(t, "errconserve", src("\t_ = x.Send(1)\n"))
	if len(bare) != 1 {
		t.Fatalf("blank discard without allow: got %d findings, want 1: %v", len(bare), bare)
	}
	allowed := lintModuleFiles(t, "errconserve",
		src("\t//lint:allow errconserve shutdown path, weight already settled\n\t_ = x.Send(1)\n"))
	if len(allowed) != 0 {
		t.Fatalf("annotated blank discard still reported: %v", allowed)
	}
	outside := lintModuleFiles(t, "errconserve", map[string]string{
		"pkg/e.go": `package pkg

type tr struct{}

func (tr) Send(v float64) error { return nil }

func f(x tr) {
	_ = x.Send(1)
}
`,
	})
	if len(outside) != 0 {
		t.Fatalf("errconserve fired outside its directories: %v", outside)
	}
}

// TestChanMisuseNilAndOwnership pins the two chanmisuse halves on a
// compact module: the nil-send path and the close-ownership path.
func TestChanMisuseNilAndOwnership(t *testing.T) {
	diags := lintModuleFiles(t, "chanmisuse", map[string]string{
		"p/p.go": `package p

type pipe struct {
	c chan int // closed by stop
}

func (p *pipe) stop() { close(p.c) }

func (p *pipe) abort() { close(p.c) }

func send() {
	var ch chan int
	ch <- 1
}
`,
	})
	if len(diags) != 2 {
		t.Fatalf("got %d chanmisuse findings, want 2 (abort's close, send's nil send): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 9 || diags[1].Pos.Line != 13 {
		t.Errorf("findings at lines %d,%d, want 9,13: %v", diags[0].Pos.Line, diags[1].Pos.Line, diags)
	}
}
