package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// LockGuard enforces the mutex-guard annotations of the concurrency
// contract (DESIGN.md §8): a struct field carrying a
//
//	// guarded by <mu>
//
// comment may only be accessed while <mu> — a sync.Mutex or
// sync.RWMutex field of the same struct — is held in the enclosing
// function. The analysis is a conservative linear walk over each
// function body: Lock/RLock set the held state, Unlock/RUnlock clear
// it, `defer mu.Unlock()` keeps it to the end of the function, and
// state acquired inside a nested block (if/for/switch/select body or
// function literal) never leaks out of it. Reads are satisfied by
// RLock or Lock; writes require the exclusive Lock. Only accesses
// whose base is a plain identifier (receiver or local) are checked —
// composite bases like e.ns[i].field are beyond the walk and pass
// silently.
//
// An embedded sync.Mutex/RWMutex is annotated by its implicit name
// (`// guarded by Mutex`), with lock calls recognized directly on the
// struct value (x.Lock()).
type LockGuard struct{}

// Name implements Analyzer.
func (LockGuard) Name() string { return "lockguard" }

// Doc implements Analyzer.
func (LockGuard) Doc() string {
	return "fields annotated `// guarded by <mu>` may only be accessed with that mutex held"
}

// guardRe extracts the guard name from a field comment.
//
//lint:allow globalstate immutable rule table, written only at init
var guardRe = regexp.MustCompile(`guarded by (\w+)`)

// guardSpec describes one annotated field's guard.
type guardSpec struct {
	guard    string // guard field name ("Mutex"/"RWMutex" when embedded)
	embedded bool   // guard is an embedded mutex, locked as x.Lock()
	rw       bool   // guard is an RWMutex: RLock satisfies reads
}

// lockKey identifies one held mutex: the base variable and the guard
// path on it ("" for an embedded mutex).
type lockKey struct {
	base  types.Object
	guard string
}

// Lock-state values.
const (
	lockNone = iota
	lockShared
	lockExclusive
)

type lockState map[lockKey]int

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Check implements Analyzer.
func (LockGuard) Check(u *Unit) []Diagnostic {
	guards, diags := u.collectGuards()
	if len(guards) == 0 {
		return diags
	}
	lg := &lockguardPass{u: u, guards: guards}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lg.walkBlock(fd.Body.List, make(lockState))
		}
	}
	diags = append(diags, lg.diags...)
	return diags
}

// collectGuards scans struct declarations for `guarded by` field
// annotations and resolves each to its guard spec. An annotation whose
// guard is not a mutex field of the same struct is itself a finding.
func (u *Unit) collectGuards() (map[types.Object]guardSpec, []Diagnostic) {
	guards := make(map[types.Object]guardSpec)
	var diags []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				name, found := guardAnnotation(field)
				if !found {
					continue
				}
				spec, ok := resolveGuard(st, name)
				if !ok {
					diags = append(diags, Diagnostic{
						Pos:     u.Fset.Position(field.Pos()),
						Rule:    "lockguard",
						Message: "`guarded by " + name + "` names no sync.Mutex or sync.RWMutex field of this struct",
					})
					continue
				}
				for _, id := range field.Names {
					if obj := u.Info.Defs[id]; obj != nil {
						guards[obj] = spec
					}
				}
			}
			return true
		})
	}
	return guards, diags
}

// guardAnnotation extracts the guard name from a field's doc or
// trailing comment.
func guardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// resolveGuard finds the named guard within the struct and classifies
// it.
func resolveGuard(st *ast.StructType, name string) (guardSpec, bool) {
	for _, field := range st.Fields.List {
		mutex, rw := mutexType(field.Type)
		if !mutex {
			continue
		}
		if len(field.Names) == 0 {
			// Embedded mutex: implicit name is the type name.
			implicit := "Mutex"
			if rw {
				implicit = "RWMutex"
			}
			if name == implicit {
				return guardSpec{guard: name, embedded: true, rw: rw}, true
			}
			continue
		}
		for _, id := range field.Names {
			if id.Name == name {
				return guardSpec{guard: name, rw: rw}, true
			}
		}
	}
	return guardSpec{}, false
}

// mutexType reports whether the type expression is sync.Mutex or
// sync.RWMutex (by syntax — the annotation convention, not full type
// resolution, names the guard).
func mutexType(expr ast.Expr) (mutex, rw bool) {
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false, false
	}
	if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "sync" {
		return false, false
	}
	switch sel.Sel.Name {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// lockguardPass walks function bodies tracking held locks.
type lockguardPass struct {
	u      *Unit
	guards map[types.Object]guardSpec
	diags  []Diagnostic
}

// walkBlock processes a statement list in source order, mutating state
// as lock operations appear.
func (lg *lockguardPass) walkBlock(list []ast.Stmt, state lockState) {
	for _, stmt := range list {
		lg.walkStmt(stmt, state)
	}
}

func (lg *lockguardPass) walkStmt(stmt ast.Stmt, state lockState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lg.lockOp(s.X); ok {
			state[key] = op
			return
		}
		lg.checkReads(s.X, state)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end; a
		// deferred function literal runs under whatever is held now.
		if _, _, ok := lg.lockOp(s.Call); ok {
			return
		}
		for _, arg := range s.Call.Args {
			lg.checkReads(arg, state)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lg.walkBlock(lit.Body.List, state.clone())
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			lg.checkReads(rhs, state)
		}
		for _, lhs := range s.Lhs {
			lg.checkWrite(lhs, state)
		}
	case *ast.IncDecStmt:
		lg.checkWrite(s.X, state)
	case *ast.SendStmt:
		lg.checkReads(s.Chan, state)
		lg.checkReads(s.Value, state)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			lg.checkReads(r, state)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			lg.walkStmt(s.Init, state)
		}
		lg.checkReads(s.Cond, state)
		lg.walkBlock(s.Body.List, state.clone())
		if s.Else != nil {
			lg.walkStmt(s.Else, state.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lg.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			lg.checkReads(s.Cond, state)
		}
		inner := state.clone()
		lg.walkBlock(s.Body.List, inner)
		if s.Post != nil {
			lg.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		lg.checkReads(s.X, state)
		lg.walkBlock(s.Body.List, state.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			lg.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			lg.checkReads(s.Tag, state)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lg.checkReads(e, state)
				}
				lg.walkBlock(cc.Body, state.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lg.walkStmt(s.Init, state)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lg.walkBlock(cc.Body, state.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					lg.walkStmt(cc.Comm, state)
				}
				lg.walkBlock(cc.Body, state.clone())
			}
		}
	case *ast.BlockStmt:
		lg.walkBlock(s.List, state.clone())
	case *ast.LabeledStmt:
		lg.walkStmt(s.Stmt, state)
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			lg.checkReads(arg, state)
		}
		// The goroutine runs concurrently: it inherits nothing.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lg.walkBlock(lit.Body.List, make(lockState))
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lg.checkReads(v, state)
					}
				}
			}
		}
	}
}

// lockOp recognizes x.mu.Lock() / x.Lock() style calls on a plain
// identifier base, returning the affected key and the resulting state.
func (lg *lockguardPass) lockOp(expr ast.Expr) (lockKey, int, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	var op int
	switch sel.Sel.Name {
	case "Lock":
		op = lockExclusive
	case "RLock":
		op = lockShared
	case "Unlock", "RUnlock":
		op = lockNone
	default:
		return lockKey{}, 0, false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		// x.Lock(): an embedded mutex on the base struct.
		obj := lg.u.Info.Uses[x]
		if obj == nil {
			return lockKey{}, 0, false
		}
		return lockKey{base: obj, guard: ""}, op, true
	case *ast.SelectorExpr:
		// x.mu.Lock(): a named mutex field.
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return lockKey{}, 0, false
		}
		obj := lg.u.Info.Uses[base]
		if obj == nil {
			return lockKey{}, 0, false
		}
		return lockKey{base: obj, guard: x.Sel.Name}, op, true
	}
	return lockKey{}, 0, false
}

// checkReads reports guarded-field reads in expr made without the
// guard held (RLock suffices for reads on an RWMutex).
func (lg *lockguardPass) checkReads(expr ast.Expr, state lockState) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lg.walkBlock(n.Body.List, state.clone())
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				lg.checkWrite(n.X, state)
				return false
			}
		case *ast.SelectorExpr:
			lg.checkAccess(n, state, false)
		}
		return true
	})
}

// checkWrite reports a guarded-field write made without the exclusive
// lock held; non-field LHS expressions fall back to read checking of
// their subexpressions.
func (lg *lockguardPass) checkWrite(expr ast.Expr, state lockState) {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		lg.checkAccess(e, state, true)
	case *ast.IndexExpr:
		// x.field[i] = v mutates the guarded collection.
		if sel, ok := e.X.(*ast.SelectorExpr); ok {
			lg.checkAccess(sel, state, true)
		} else {
			lg.checkReads(e.X, state)
		}
		lg.checkReads(e.Index, state)
	case *ast.StarExpr:
		lg.checkReads(e.X, state)
	default:
		lg.checkReads(expr, state)
	}
}

// checkAccess reports one guarded-field access if its guard is not
// held strongly enough.
func (lg *lockguardPass) checkAccess(sel *ast.SelectorExpr, state lockState, write bool) {
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	fieldObj := lg.u.Info.Uses[sel.Sel]
	if fieldObj == nil {
		return
	}
	spec, guarded := lg.guards[fieldObj]
	if !guarded {
		return
	}
	baseObj := lg.u.Info.Uses[base]
	if baseObj == nil {
		return
	}
	guard := spec.guard
	if spec.embedded {
		guard = ""
	}
	held := state[lockKey{base: baseObj, guard: guard}]
	if held == lockExclusive || (!write && held == lockShared && spec.rw) {
		return
	}
	verb, need := "read of", spec.guard
	if write {
		verb = "write to"
		if spec.rw {
			need += ".Lock (exclusive)"
		}
	} else if spec.rw {
		need += ".RLock"
	}
	lg.diags = append(lg.diags, Diagnostic{
		Pos:     lg.u.Fset.Position(sel.Pos()),
		Rule:    "lockguard",
		Message: verb + " " + base.Name + "." + sel.Sel.Name + " without holding " + base.Name + "." + need + " (field is `guarded by " + spec.guard + "`)",
	})
}
